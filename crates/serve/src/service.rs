//! The daemon core: admission control, the priority queue, the worker
//! pool, and the durable registry — everything except the TCP framing
//! (which lives in [`crate::server`]).
//!
//! # Lifecycle and durability contract
//!
//! Every externally visible state change is journalled **before** it is
//! acknowledged: `submit` appends (and flushes) the `Submit` record before
//! returning the job id, so a `kill -9` at any later instant cannot lose an
//! acknowledged job. Workers journal `Start` when they claim and `Finish`
//! when the engine reports; recovery re-queues anything admitted but not
//! finished (its solve died with the process) and re-serves every finished
//! result from the registry. See `docs/serve.md` for the full contract.
//!
//! # Admission
//!
//! The queue is bounded ([`ServiceConfig::queue_cap`], counting jobs in
//! [`JobStatus::Queued`]). A full queue — or a stopping daemon — yields a
//! structured [`SubmitOutcome::Rejected`] with the reason and current
//! depth; nothing is journalled for rejected submissions. Admitted jobs are
//! claimed highest-priority-first, FIFO by id on ties.
//!
//! # Result reuse
//!
//! Two layers. Submissions whose [content key](JobSpec::content_key)
//! matches an already-finished certified job short-circuit the queue
//! entirely: the daemon journals `Submit` + `Finish` with the stored result
//! and bumps `serve.cache.hits`. Below that, every per-job engine shares
//! one [`ResultCache`], so even concurrent duplicate jobs that miss the
//! serve layer reuse reference solutions and solver results.

use std::collections::{BinaryHeap, HashMap};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

#[cfg(feature = "telemetry")]
use std::collections::BTreeMap;
#[cfg(feature = "telemetry")]
use std::sync::atomic::AtomicU64;

#[cfg(feature = "telemetry")]
use pobp_core::metrics::{MetricsWindow, Prom, Sample};
#[cfg(feature = "telemetry")]
use pobp_core::obs::LogHistogram;
use pobp_core::{obs_count, obs_event, obs_span, trace_event};
use pobp_engine::{Algo, Engine, EngineConfig, ResultCache, TaskReport, TaskResult};

use crate::job::{JobSpec, JobStatus};
use crate::journal::{recovery_json, Journal, RecoveryReport, DEFAULT_COMPACT_EVERY};
use crate::json::{obj, Json};
use crate::registry::{Event, JobRecord, Registry};
#[cfg(feature = "telemetry")]
use crate::telemetry::TelemetryOptions;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Registry directory (journal + snapshot). Created if missing.
    pub dir: PathBuf,
    /// Concurrent job workers (each runs one job at a time on its own
    /// engine). `0` starts no workers: jobs queue but never run — the
    /// admission tests use this to saturate the queue deterministically;
    /// the CLI never passes it.
    pub workers: usize,
    /// Admission bound: maximum jobs in [`JobStatus::Queued`] at once.
    pub queue_cap: usize,
    /// Engine threads per job (`0` = hardware parallelism). Kept at 1 by
    /// default so `workers` is the daemon's parallelism knob.
    pub engine_threads: usize,
    /// Arm the engine's graceful-degradation ladder for deadline overruns
    /// (see `docs/robustness.md`).
    pub degrade: bool,
    /// Journal appends between snapshot compactions.
    pub compact_every: u64,
    /// Arm deterministic IO fault injection (the io-* sites in
    /// docs/sweeps.md) under the journal's appends and compactions.
    #[cfg(feature = "chaos")]
    pub chaos: Option<Arc<pobp_engine::FaultPlan>>,
    /// Live-telemetry knobs: sampler period, window size, flight-dump
    /// directory (docs/observability.md).
    #[cfg(feature = "telemetry")]
    pub telemetry: TelemetryOptions,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            dir: PathBuf::from("pobp-serve-registry"),
            workers: 2,
            queue_cap: 64,
            engine_threads: 1,
            degrade: false,
            compact_every: DEFAULT_COMPACT_EVERY,
            #[cfg(feature = "chaos")]
            chaos: None,
            #[cfg(feature = "telemetry")]
            telemetry: TelemetryOptions::default(),
        }
    }
}

/// What `submit` decided.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitOutcome {
    /// The job was admitted (and durably journalled). `cached` means it was
    /// answered immediately from an equal-keyed finished job and is already
    /// terminal.
    Accepted {
        /// The assigned job id.
        id: u64,
        /// State at acknowledgement: `Queued`, or terminal when `cached`.
        status: JobStatus,
        /// The job's content key.
        key: u64,
        /// Whether the result was re-served from an equal-keyed job.
        cached: bool,
    },
    /// The job was not admitted; nothing was journalled.
    Rejected {
        /// `"queue_full"` or `"shutting_down"`.
        reason: &'static str,
        /// Jobs queued at the moment of rejection.
        queue_depth: usize,
    },
}

/// What `cancel` decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelOutcome {
    /// No job with that id.
    NotFound,
    /// The job had already reached this terminal state.
    AlreadyTerminal(JobStatus),
    /// The job was still queued: journalled cancelled; it will never reach
    /// an engine.
    CancelledQueued,
    /// The job was running: its engine was signalled; the worker journals
    /// the terminal state when the engine returns.
    SignalledRunning,
}

/// Always-on service counters (plain fields under the state lock, so CI
/// can assert on them without an `obs` build; the `serve.*` obs family
/// mirrors them when compiled in).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Admitted submissions (including cache-served ones).
    pub accepted: u64,
    /// Rejected submissions.
    pub rejected: u64,
    /// Submissions answered from an equal-keyed finished job.
    pub cache_hits: u64,
    /// Jobs finished [`JobStatus::Done`].
    pub done: u64,
    /// Jobs finished [`JobStatus::Degraded`].
    pub degraded: u64,
    /// Jobs finished [`JobStatus::Failed`].
    pub failed: u64,
    /// Jobs cancelled (queued or running).
    pub cancelled: u64,
    /// Jobs re-queued by crash recovery.
    pub requeued: u64,
    /// Victim probes made by the engines' work-stealing workers, summed
    /// over finished jobs (scheduling telemetry; never affects results).
    pub engine_steal_attempts: u64,
    /// Steal probes that landed work, summed over finished jobs.
    pub engine_steal_hits: u64,
}

/// Priority-queue entry: max-heap on `(priority, −id)` — higher priority
/// first, FIFO by id on ties.
#[derive(Debug, PartialEq, Eq)]
struct QueueEntry {
    priority: i64,
    id: u64,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority.cmp(&other.priority).then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Everything under the state lock.
struct State {
    registry: Registry,
    journal: Journal,
    queue: BinaryHeap<QueueEntry>,
    /// Jobs in [`JobStatus::Queued`] (the admission-bounded quantity; the
    /// heap may additionally hold stale entries for cancelled jobs).
    queued: usize,
    /// Per-running-job engines, for targeted cancel.
    running: HashMap<u64, Arc<Engine>>,
    /// Content key → finished certified job id, for cross-request reuse.
    key_index: HashMap<u64, u64>,
    counters: ServeCounters,
    recovery: RecoveryReport,
}

/// Live-telemetry state (outside the state lock: the sampler and scrape
/// paths take the state lock briefly per tick, never the other way round).
#[cfg(feature = "telemetry")]
struct Telemetry {
    /// Monotone epoch for sample timestamps and uptime.
    started: Instant,
    /// The windowed sample ring the `metrics` op and scrapes read.
    window: Mutex<MetricsWindow>,
    /// Job wall-clock latency in milliseconds (engine run only).
    latency_ms: LogHistogram,
    /// Jobs finished `Done`/`Degraded` per algorithm name.
    per_alg_done: Mutex<BTreeMap<&'static str, u64>>,
    /// Flight-dump file counter.
    flight_seq: AtomicU64,
}

struct Inner {
    cfg: ServiceConfig,
    cache: Arc<ResultCache>,
    state: Mutex<State>,
    work_ready: Condvar,
    stopping: AtomicBool,
    drain: AtomicBool,
    #[cfg(feature = "telemetry")]
    telemetry: Telemetry,
}

/// The running daemon core. Construct with [`Service::start`]; all methods
/// are callable from any thread (the TCP server calls them from
/// per-connection threads).
pub struct Service {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Serialises [`Service::stop`]: the first caller runs the full
    /// drain-join-snapshot sequence, later callers block until it is done
    /// and then return. The final compaction must run exactly once —
    /// a second rewrite could race an external reader (the soak replays
    /// the registry directory as soon as the daemon goes quiet).
    stop_once: std::sync::Once,
}

impl Service {
    /// Recovers the registry from `cfg.dir` and starts the worker pool.
    pub fn start(cfg: ServiceConfig) -> io::Result<Service> {
        #[cfg(feature = "telemetry")]
        if let Some(dir) = &cfg.telemetry.flight_dir {
            std::fs::create_dir_all(dir)?;
        }
        let (journal, mut registry, recovery) = Journal::open(&cfg.dir, cfg.compact_every)?;
        // Arm IO fault injection after recovery: recovery itself is
        // read-only, and the startup compaction must succeed so the
        // injected faults land on a known-clean journal.
        #[cfg(feature = "chaos")]
        let journal = {
            let mut journal = journal;
            if let Some(plan) = cfg.chaos.clone() {
                let key = cfg
                    .dir
                    .to_string_lossy()
                    .bytes()
                    .fold(0x6a6f_7572_6e61_6c30_u64, |h, b| {
                        pobp_engine::splitmix64(h ^ u64::from(b))
                    });
                journal.set_chaos(plan, key);
            }
            journal
        };
        let pending = registry.recover_pending();
        let mut queue = BinaryHeap::new();
        let mut key_index = HashMap::new();
        for job in registry.iter() {
            if matches!(job.status, JobStatus::Done | JobStatus::Degraded)
                && job.result.is_some()
                && job.spec.alg != Algo::PanicForTest
            {
                key_index.entry(job.spec.content_key()).or_insert(job.id);
            }
        }
        for &id in &pending {
            let priority = registry.get(id).map_or(0, |j| j.spec.priority);
            queue.push(QueueEntry { priority, id });
        }
        let counters = ServeCounters { requeued: pending.len() as u64, ..Default::default() };
        obs_count!("serve.recover.requeued", pending.len() as u64);
        let queued = pending.len();
        let inner = Arc::new(Inner {
            cfg: cfg.clone(),
            cache: Arc::new(ResultCache::new()),
            state: Mutex::new(State {
                registry,
                journal,
                queue,
                queued,
                running: HashMap::new(),
                key_index,
                counters,
                recovery,
            }),
            work_ready: Condvar::new(),
            stopping: AtomicBool::new(false),
            drain: AtomicBool::new(true),
            #[cfg(feature = "telemetry")]
            telemetry: Telemetry {
                started: Instant::now(),
                window: Mutex::new(MetricsWindow::new(cfg.telemetry.window.max(2))),
                latency_ms: LogHistogram::new(),
                per_alg_done: Mutex::new(BTreeMap::new()),
                flight_seq: AtomicU64::new(0),
            },
        });
        #[cfg_attr(not(feature = "telemetry"), allow(unused_mut))]
        let mut workers: Vec<JoinHandle<()>> = (0..cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("pobp-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        #[cfg(feature = "telemetry")]
        if cfg.telemetry.sample_ms > 0 {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name("pobp-serve-sampler".into())
                    .spawn(move || sampler_loop(&inner))
                    .expect("spawn sampler"),
            );
        }
        Ok(Service { inner, workers: Mutex::new(workers), stop_once: std::sync::Once::new() })
    }

    /// What recovery found when this daemon started.
    pub fn recovery(&self) -> RecoveryReport {
        self.inner.state.lock().unwrap().recovery
    }

    /// Admission: journal-then-acknowledge, bounded queue, serve-level
    /// cache. `Err` means the journal could not be written — the submission
    /// is **not** acknowledged and nothing is enqueued.
    pub fn submit(&self, spec: JobSpec) -> io::Result<SubmitOutcome> {
        let mut state = self.inner.state.lock().unwrap();
        if self.inner.stopping.load(Ordering::Acquire) {
            state.counters.rejected += 1;
            obs_count!("serve.submit.rejected");
            return Ok(SubmitOutcome::Rejected {
                reason: "shutting_down",
                queue_depth: state.queued,
            });
        }
        if state.queued >= self.inner.cfg.queue_cap {
            state.counters.rejected += 1;
            obs_count!("serve.submit.rejected");
            return Ok(SubmitOutcome::Rejected { reason: "queue_full", queue_depth: state.queued });
        }
        let key = spec.content_key();
        // Serve-level cache: an equal-keyed certified result short-circuits
        // the queue. Journalled as submit+finish so restarts re-serve it
        // identically.
        if let Some(result) =
            state.key_index.get(&key).and_then(|id| state.registry.get(*id)).and_then(|donor| {
                matches!(donor.status, JobStatus::Done | JobStatus::Degraded)
                    .then(|| donor.result.clone())
                    .flatten()
            })
        {
            let id = state.registry.allocate_id();
            let submit = Event::Submit { id, spec };
            state.journal.append(&submit).inspect_err(|_e| {
                #[cfg(feature = "telemetry")]
                flight_on_failure(&self.inner, "journal-poisoned");
            })?;
            state.registry.apply(&submit);
            let finish = Event::Finish { id, result };
            state.journal.append(&finish).inspect_err(|_e| {
                #[cfg(feature = "telemetry")]
                flight_on_failure(&self.inner, "journal-poisoned");
            })?;
            state.registry.apply(&finish);
            let status = state.registry.get(id).expect("just finished").status;
            state.counters.accepted += 1;
            state.counters.cache_hits += 1;
            match status {
                JobStatus::Degraded => state.counters.degraded += 1,
                _ => state.counters.done += 1,
            }
            obs_count!("serve.submit.accepted");
            obs_count!("serve.cache.hits");
            trace_event!("serve.cache_hit");
            let State { registry, journal, .. } = &mut *state;
            let _ = journal.maybe_compact(registry);
            return Ok(SubmitOutcome::Accepted { id, status, key, cached: true });
        }
        let id = state.registry.allocate_id();
        let priority = spec.priority;
        let submit = Event::Submit { id, spec };
        state.journal.append(&submit).inspect_err(|_e| {
            #[cfg(feature = "telemetry")]
            flight_on_failure(&self.inner, "journal-poisoned");
        })?;
        state.registry.apply(&submit);
        state.queue.push(QueueEntry { priority, id });
        state.queued += 1;
        state.counters.accepted += 1;
        obs_count!("serve.submit.accepted");
        obs_event!("serve.queue.depth", state.queued as u64);
        trace_event!("serve.submit", id);
        drop(state);
        self.inner.work_ready.notify_one();
        Ok(SubmitOutcome::Accepted { id, status: JobStatus::Queued, key, cached: false })
    }

    /// Cancels a job: queued jobs are journalled cancelled on the spot and
    /// never reach an engine; running jobs have their engine signalled.
    pub fn cancel(&self, id: u64) -> CancelOutcome {
        let mut state = self.inner.state.lock().unwrap();
        let Some(job) = state.registry.get(id) else { return CancelOutcome::NotFound };
        match job.status {
            s if s.is_terminal() => CancelOutcome::AlreadyTerminal(s),
            JobStatus::Running => {
                if let Some(engine) = state.running.get(&id) {
                    engine.cancel_all();
                }
                trace_event!("serve.cancel.running", id);
                CancelOutcome::SignalledRunning
            }
            _ => {
                let cancel = Event::Cancel { id };
                if let Err(e) = state.journal.append(&cancel) {
                    eprintln!("serve: journal append failed on cancel({id}): {e}");
                    #[cfg(feature = "telemetry")]
                    flight_on_failure(&self.inner, "journal-poisoned");
                }
                state.registry.apply(&cancel);
                state.queued = state.queued.saturating_sub(1);
                state.counters.cancelled += 1;
                obs_count!("serve.jobs.cancelled");
                trace_event!("serve.cancel.queued", id);
                CancelOutcome::CancelledQueued
            }
        }
    }

    /// One job's record, if it exists.
    pub fn job(&self, id: u64) -> Option<JobRecord> {
        self.inner.state.lock().unwrap().registry.get(id).cloned()
    }

    /// Records in id order, optionally filtered by status, up to `limit`.
    pub fn list(&self, status: Option<JobStatus>, limit: usize) -> Vec<JobRecord> {
        let state = self.inner.state.lock().unwrap();
        state
            .registry
            .iter()
            .filter(|j| status.is_none_or(|s| j.status == s))
            .take(limit)
            .cloned()
            .collect()
    }

    /// The always-on counter snapshot.
    pub fn counters(&self) -> ServeCounters {
        self.inner.state.lock().unwrap().counters
    }

    /// The `stats` op payload: counters, queue/running depth, journal
    /// position, and what recovery found at startup.
    pub fn stats_json(&self) -> Json {
        let state = self.inner.state.lock().unwrap();
        let c = state.counters;
        obj([
            ("jobs", Json::Num(state.registry.len() as f64)),
            ("queued", Json::Num(state.queued as f64)),
            ("running", Json::Num(state.running.len() as f64)),
            ("queue_cap", Json::Num(self.inner.cfg.queue_cap as f64)),
            ("accepted", Json::Num(c.accepted as f64)),
            ("rejected", Json::Num(c.rejected as f64)),
            ("cache_hits", Json::Num(c.cache_hits as f64)),
            ("done", Json::Num(c.done as f64)),
            ("degraded", Json::Num(c.degraded as f64)),
            ("failed", Json::Num(c.failed as f64)),
            ("cancelled", Json::Num(c.cancelled as f64)),
            ("engine_steal_attempts", Json::Num(c.engine_steal_attempts as f64)),
            ("engine_steal_hits", Json::Num(c.engine_steal_hits as f64)),
            ("journal_seq", Json::Num(state.journal.seq() as f64)),
            ("compactions", Json::Num(state.journal.compactions() as f64)),
            ("recovery", recovery_json(&state.recovery)),
        ])
    }

    /// The `metrics` op payload: takes one on-demand sample (so the view is
    /// current even between sampler ticks, and works with `sample_ms: 0`),
    /// then derives windowed rates, ratios, latency quantiles, and the
    /// per-algorithm breakdown. All values are wall-clock telemetry — see
    /// the determinism contract in `docs/observability.md`.
    #[cfg(feature = "telemetry")]
    pub fn metrics_json(&self) -> Json {
        let sample = capture_sample(&self.inner);
        let mut window = self.inner.telemetry.window.lock().unwrap();
        window.push(sample);
        let latest = window.latest().cloned().unwrap_or_default();
        let rate = |name: &str| match window.rate(name) {
            Some(r) => Json::Num(r),
            None => Json::Null,
        };
        let gauge = |name: &str| Json::Num(window.gauge(name).unwrap_or(0.0));
        let ratio = |num: &str, den: &str| match window.ratio(num, den) {
            Some(r) => Json::Num(r),
            None => Json::Null,
        };
        let h = &self.inner.telemetry.latency_ms;
        let latency_count: u64 = h.counts().iter().sum();
        let per_alg: Vec<(String, Json)> = self
            .inner
            .telemetry
            .per_alg_done
            .lock()
            .unwrap()
            .iter()
            .map(|(alg, n)| ((*alg).to_string(), obj([("done", Json::Num(*n as f64))])))
            .collect();
        obj([
            ("window_secs", Json::Num(window.window_secs())),
            ("samples", Json::Num(window.len() as f64)),
            ("sample_ms", Json::Num(self.inner.cfg.telemetry.sample_ms as f64)),
            ("uptime_ms", Json::Num(self.inner.telemetry.started.elapsed().as_millis() as f64)),
            ("queued", gauge("queued")),
            ("running", gauge("running")),
            ("jobs", gauge("jobs")),
            ("queue_cap", Json::Num(self.inner.cfg.queue_cap as f64)),
            ("journal_bytes", gauge("journal_bytes")),
            ("journal_poisoned", Json::Bool(window.gauge("journal_poisoned").unwrap_or(0.0) > 0.0)),
            (
                "counters",
                Json::Obj(
                    latest
                        .counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "rates",
                obj([
                    ("accepted_per_s", rate("accepted")),
                    ("rejected_per_s", rate("rejected")),
                    ("finished_per_s", rate("finished")),
                    ("done_per_s", rate("done")),
                    ("failed_per_s", rate("failed")),
                    ("cache_hits_per_s", rate("cache_hits")),
                ]),
            ),
            ("cache_hit_ratio", ratio("cache_hits", "accepted")),
            ("degrade_ratio", ratio("degraded", "finished")),
            (
                "latency_ms",
                obj([
                    ("count", Json::Num(latency_count as f64)),
                    ("p50", Json::Num(h.quantile(0.50))),
                    ("p90", Json::Num(h.quantile(0.90))),
                    ("p99", Json::Num(h.quantile(0.99))),
                ]),
            ),
            ("per_alg", Json::Obj(per_alg)),
        ])
    }

    /// The Prometheus text exposition body (`--metrics-addr` scrapes):
    /// cumulative counters straight from the always-on [`ServeCounters`],
    /// instantaneous gauges, windowed rates/ratios, and latency quantiles.
    #[cfg(feature = "telemetry")]
    pub fn prometheus_text(&self) -> String {
        let sample = capture_sample(&self.inner);
        let mut window = self.inner.telemetry.window.lock().unwrap();
        window.push(sample);
        let latest = window.latest().cloned().unwrap_or_default();
        let counter = |name: &str| latest.counters.get(name).copied().unwrap_or(0) as f64;
        let gauge = |name: &str| window.gauge(name).unwrap_or(0.0);
        let h = &self.inner.telemetry.latency_ms;
        let latency_count: u64 = h.counts().iter().sum();
        let mut p = Prom::new();
        p.header("pobp_serve_up", "gauge", "1 while the daemon answers scrapes.")
            .sample("pobp_serve_up", &[], 1.0);
        p.header("pobp_serve_uptime_seconds", "gauge", "Seconds since the daemon started.")
            .sample(
                "pobp_serve_uptime_seconds",
                &[],
                self.inner.telemetry.started.elapsed().as_secs_f64(),
            );
        p.header("pobp_serve_jobs_accepted_total", "counter", "Admitted submissions.")
            .sample("pobp_serve_jobs_accepted_total", &[], counter("accepted"));
        p.header("pobp_serve_jobs_rejected_total", "counter", "Rejected submissions.")
            .sample("pobp_serve_jobs_rejected_total", &[], counter("rejected"));
        p.header(
            "pobp_serve_cache_hits_total",
            "counter",
            "Submissions answered from an equal-keyed finished job.",
        )
        .sample("pobp_serve_cache_hits_total", &[], counter("cache_hits"));
        p.header(
            "pobp_serve_jobs_finished_total",
            "counter",
            "Jobs reaching a terminal status, by status.",
        );
        for status in ["done", "degraded", "failed", "cancelled"] {
            p.sample("pobp_serve_jobs_finished_total", &[("status", status)], counter(status));
        }
        p.header(
            "pobp_serve_jobs_done_by_alg_total",
            "counter",
            "Jobs finished done or degraded, by algorithm.",
        );
        for (alg, n) in self.inner.telemetry.per_alg_done.lock().unwrap().iter() {
            p.sample("pobp_serve_jobs_done_by_alg_total", &[("alg", alg)], *n as f64);
        }
        p.header(
            "pobp_serve_engine_steal_attempts_total",
            "counter",
            "Work-steal victim probes made by job engines (scheduling telemetry).",
        )
        .sample("pobp_serve_engine_steal_attempts_total", &[], counter("engine_steal_attempts"));
        p.header(
            "pobp_serve_engine_steal_hits_total",
            "counter",
            "Work-steal probes that landed work in job engines.",
        )
        .sample("pobp_serve_engine_steal_hits_total", &[], counter("engine_steal_hits"));
        p.header("pobp_serve_queue_depth", "gauge", "Jobs currently queued.")
            .sample("pobp_serve_queue_depth", &[], gauge("queued"));
        p.header("pobp_serve_queue_cap", "gauge", "Admission bound on queued jobs.")
            .sample("pobp_serve_queue_cap", &[], self.inner.cfg.queue_cap as f64);
        p.header("pobp_serve_running", "gauge", "Jobs currently running.")
            .sample("pobp_serve_running", &[], gauge("running"));
        p.header("pobp_serve_jobs", "gauge", "Jobs in the registry.")
            .sample("pobp_serve_jobs", &[], gauge("jobs"));
        p.header("pobp_serve_journal_bytes", "gauge", "Size of the journal file.")
            .sample("pobp_serve_journal_bytes", &[], gauge("journal_bytes"));
        p.header(
            "pobp_serve_journal_poisoned",
            "gauge",
            "1 while the journal refuses appends after an IO failure.",
        )
        .sample("pobp_serve_journal_poisoned", &[], gauge("journal_poisoned"));
        p.header(
            "pobp_serve_accepted_per_second",
            "gauge",
            "Admissions per second over the sample window.",
        )
        .sample("pobp_serve_accepted_per_second", &[], window.rate("accepted").unwrap_or(0.0));
        p.header(
            "pobp_serve_finished_per_second",
            "gauge",
            "Terminal jobs per second over the sample window.",
        )
        .sample("pobp_serve_finished_per_second", &[], window.rate("finished").unwrap_or(0.0));
        p.header(
            "pobp_serve_cache_hit_ratio",
            "gauge",
            "Cache hits per admission over the sample window (NaN when idle).",
        )
        .sample(
            "pobp_serve_cache_hit_ratio",
            &[],
            window.ratio("cache_hits", "accepted").unwrap_or(f64::NAN),
        );
        p.header(
            "pobp_serve_degrade_ratio",
            "gauge",
            "Degraded finishes per terminal job over the sample window (NaN when idle).",
        )
        .sample(
            "pobp_serve_degrade_ratio",
            &[],
            window.ratio("degraded", "finished").unwrap_or(f64::NAN),
        );
        p.header(
            "pobp_serve_job_latency_ms",
            "gauge",
            "Job wall-clock latency quantiles in milliseconds.",
        );
        for (label, q) in [("0.5", 0.50), ("0.9", 0.90), ("0.99", 0.99)] {
            p.sample("pobp_serve_job_latency_ms", &[("quantile", label)], h.quantile(q));
        }
        p.header("pobp_serve_job_latency_count", "counter", "Jobs measured for latency.")
            .sample("pobp_serve_job_latency_count", &[], latency_count as f64);
        p.finish()
    }

    /// Writes the flight-recorder ring as Chrome-trace JSON into the
    /// configured `--flight-dir` and returns the path, or `Ok(None)` when
    /// no flight directory is configured.
    #[cfg(feature = "telemetry")]
    pub fn dump_flight(&self, reason: &str) -> io::Result<Option<PathBuf>> {
        dump_flight_to_dir(&self.inner, reason)
    }

    /// Blocks until no job is queued or running, or `timeout` elapses.
    /// Returns whether the daemon quiesced.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let state = self.inner.state.lock().unwrap();
                if state.queued == 0 && state.running.is_empty() {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stops the daemon. `drain: true` finishes every queued job first;
    /// `drain: false` cancels running engines and leaves the rest of the
    /// queue journalled as queued (a restart re-runs it). Joins the worker
    /// pool and writes a final snapshot. Idempotent and blocking: the first
    /// caller's `drain` wins, concurrent callers wait until the sequence
    /// has finished, and by the time any `stop` returns the final snapshot
    /// is on disk and the journal will not be touched again.
    pub fn stop(&self, drain: bool) {
        self.stop_once.call_once(|| {
            self.inner.drain.store(drain, Ordering::Release);
            self.inner.stopping.store(true, Ordering::Release);
            if !drain {
                // Non-blocking cancel signal; the workers observe it at the
                // next task boundary and journal the cancelled outcome
                // themselves.
                let state = self.inner.state.lock().unwrap();
                for engine in state.running.values() {
                    engine.cancel_all();
                }
            }
            self.inner.work_ready.notify_all();
            let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
            for h in handles {
                let _ = h.join();
            }
            let mut state = self.inner.state.lock().unwrap();
            let State { registry, journal, .. } = &mut *state;
            if let Err(e) = journal.compact(registry) {
                eprintln!("serve: final snapshot failed: {e}");
            }
        });
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if !self.inner.stopping.load(Ordering::Acquire) {
            self.stop(false);
        }
    }
}

/// One timestamped capture of the always-on counters and gauges, for the
/// sampler thread and on-demand `metrics`/scrape reads.
#[cfg(feature = "telemetry")]
fn capture_sample(inner: &Inner) -> Sample {
    let state = inner.state.lock().unwrap();
    let c = state.counters;
    let finished = c.done + c.degraded + c.failed + c.cancelled;
    Sample::at(inner.telemetry.started.elapsed().as_millis() as u64)
        .counter("accepted", c.accepted)
        .counter("rejected", c.rejected)
        .counter("cache_hits", c.cache_hits)
        .counter("done", c.done)
        .counter("degraded", c.degraded)
        .counter("failed", c.failed)
        .counter("cancelled", c.cancelled)
        .counter("requeued", c.requeued)
        .counter("engine_steal_attempts", c.engine_steal_attempts)
        .counter("engine_steal_hits", c.engine_steal_hits)
        .counter("finished", finished)
        .counter("journal_appends", state.journal.seq())
        .gauge("queued", state.queued as f64)
        .gauge("running", state.running.len() as f64)
        .gauge("jobs", state.registry.len() as f64)
        .gauge("journal_bytes", state.journal.bytes() as f64)
        .gauge("journal_poisoned", u8::from(state.journal.is_poisoned()) as f64)
}

/// The background sampler: one [`capture_sample`] per `--sample-ms` tick
/// into the window ring, until the daemon stops. Sleeps in short steps so
/// `stop` never waits a full period.
#[cfg(feature = "telemetry")]
fn sampler_loop(inner: &Inner) {
    let period = Duration::from_millis(inner.cfg.telemetry.sample_ms.max(10));
    loop {
        if inner.stopping.load(Ordering::Acquire) {
            return;
        }
        let sample = capture_sample(inner);
        inner.telemetry.window.lock().unwrap().push(sample);
        let mut slept = Duration::ZERO;
        while slept < period {
            if inner.stopping.load(Ordering::Acquire) {
                return;
            }
            let step = Duration::from_millis(20).min(period - slept);
            std::thread::sleep(step);
            slept += step;
        }
    }
}

/// Writes the flight ring to `--flight-dir` as
/// `flight-NNNNN-<reason>.json`; `Ok(None)` when no directory is
/// configured.
#[cfg(feature = "telemetry")]
fn dump_flight_to_dir(inner: &Inner, reason: &str) -> io::Result<Option<PathBuf>> {
    let Some(dir) = &inner.cfg.telemetry.flight_dir else { return Ok(None) };
    std::fs::create_dir_all(dir)?;
    let n = inner.telemetry.flight_seq.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("flight-{n:05}-{reason}.json"));
    std::fs::write(&path, pobp_core::flight::dump_json())?;
    Ok(Some(path))
}

/// Automatic flight dump on a failure trigger (panicked task, failed
/// certificate, poisoned journal): best-effort, a note on stderr either
/// way, never an error to the caller.
#[cfg(feature = "telemetry")]
fn flight_on_failure(inner: &Inner, reason: &str) {
    match dump_flight_to_dir(inner, reason) {
        Ok(Some(path)) => eprintln!("serve: flight dump ({reason}) written to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("serve: flight dump ({reason}) failed: {e}"),
    }
}

/// One worker: claim highest-priority queued job → journal `Start` → run it
/// on a fresh engine sharing the daemon cache → journal `Finish`.
fn worker_loop(inner: &Inner) {
    loop {
        let mut state = inner.state.lock().unwrap();
        let id = loop {
            let mut claimed = None;
            while let Some(entry) = state.queue.pop() {
                // Jobs cancelled while queued keep their (stale) heap entry;
                // this status re-check is what guarantees they never reach
                // an engine.
                if state.registry.get(entry.id).map(|j| j.status) == Some(JobStatus::Queued) {
                    claimed = Some(entry.id);
                    break;
                }
            }
            if let Some(id) = claimed {
                break id;
            }
            if inner.stopping.load(Ordering::Acquire) {
                return;
            }
            state = inner.work_ready.wait(state).unwrap();
        };
        // Cancel-mode stop: put the claim back and exit; the final snapshot
        // persists it as queued for the next daemon.
        if inner.stopping.load(Ordering::Acquire) && !inner.drain.load(Ordering::Acquire) {
            let priority = state.registry.get(id).map_or(0, |j| j.spec.priority);
            state.queue.push(QueueEntry { priority, id });
            return;
        }
        let spec = state.registry.get(id).expect("claimed job exists").spec.clone();
        let start = Event::Start { id };
        if let Err(e) = state.journal.append(&start) {
            eprintln!("serve: journal append failed on start({id}): {e}");
            #[cfg(feature = "telemetry")]
            flight_on_failure(inner, "journal-poisoned");
        }
        state.registry.apply(&start);
        state.queued = state.queued.saturating_sub(1);
        let engine = Arc::new({
            #[cfg_attr(not(feature = "chaos"), allow(unused_mut))]
            let mut engine = Engine::with_shared_cache(
                EngineConfig {
                    threads: inner.cfg.engine_threads,
                    deadline: spec.deadline_ms.map(Duration::from_millis),
                    degrade: inner.cfg.degrade,
                    ..EngineConfig::default()
                },
                Arc::clone(&inner.cache),
            );
            // The daemon's fault plan covers the engines too, not just the
            // journal: solver-side sites (panic, corrupt-ref, …) fire
            // per task key inside jobs, which is how the CI flight-recorder
            // drill forces a CertFailed through the daemon.
            #[cfg(feature = "chaos")]
            if let Some(plan) = &inner.cfg.chaos {
                engine.set_chaos(Arc::clone(plan));
            }
            engine
        });
        state.running.insert(id, Arc::clone(&engine));
        drop(state);
        trace_event!("serve.claim", id);
        let task = spec.task();
        #[cfg(feature = "telemetry")]
        let job_started = Instant::now();
        let report = obs_span!("serve.job", engine.run_batch(std::slice::from_ref(&task)));
        let engine_stats = report.stats;
        let task_report = report.reports.into_iter().next().expect("batch of one");
        #[cfg(feature = "telemetry")]
        {
            inner.telemetry.latency_ms.record(job_started.elapsed().as_millis() as u64);
            // Post-mortem triggers: bound the damage story to a file the
            // moment an engine reports a panic or a failed certificate.
            match &task_report.result {
                TaskResult::CertFailed { .. } => flight_on_failure(inner, "cert-failed"),
                TaskResult::Panicked { .. } => flight_on_failure(inner, "panic"),
                _ => {}
            }
        }
        let result = task_result_json(&task_report);
        let mut state = inner.state.lock().unwrap();
        state.running.remove(&id);
        state.counters.engine_steal_attempts += engine_stats.steal_attempts as u64;
        state.counters.engine_steal_hits += engine_stats.steal_hits as u64;
        let finish = Event::Finish { id, result };
        if let Err(e) = state.journal.append(&finish) {
            eprintln!("serve: journal append failed on finish({id}): {e}");
            #[cfg(feature = "telemetry")]
            flight_on_failure(inner, "journal-poisoned");
        }
        state.registry.apply(&finish);
        let status = state.registry.get(id).expect("finished job exists").status;
        match status {
            JobStatus::Done => {
                state.counters.done += 1;
                obs_count!("serve.jobs.done");
            }
            JobStatus::Degraded => {
                state.counters.degraded += 1;
                obs_count!("serve.jobs.degraded");
            }
            JobStatus::Cancelled => {
                state.counters.cancelled += 1;
                obs_count!("serve.jobs.cancelled");
            }
            _ => {
                state.counters.failed += 1;
                obs_count!("serve.jobs.failed");
            }
        }
        #[cfg(feature = "telemetry")]
        if matches!(status, JobStatus::Done | JobStatus::Degraded) {
            *inner.telemetry.per_alg_done.lock().unwrap().entry(spec.alg.name()).or_insert(0) += 1;
        }
        if matches!(status, JobStatus::Done | JobStatus::Degraded)
            && spec.alg != Algo::PanicForTest
        {
            state.key_index.entry(spec.content_key()).or_insert(id);
        }
        trace_event!("serve.finish", id);
        let State { registry, journal, .. } = &mut *state;
        if let Err(e) = journal.maybe_compact(registry) {
            eprintln!("serve: compaction failed: {e}");
        }
    }
}

/// The result object journalled and served for a finished task.
///
/// Contains only values that are a pure function of the task (the engine's
/// determinism contract), so re-running the same spec — any thread count,
/// any restart — reproduces it byte-identically. `certified` is `true`
/// exactly for the statuses whose output passed the engine's certification
/// trust boundary.
pub fn task_result_json(report: &TaskReport) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![
        ("status".into(), Json::Str(report.result.status().into())),
        ("attempts".into(), Json::Num(report.attempts as f64)),
        (
            "certified".into(),
            Json::Bool(matches!(
                report.result,
                TaskResult::Done(_) | TaskResult::Degraded { .. }
            )),
        ),
    ];
    match &report.result {
        TaskResult::Degraded { fallback, cause, .. } => {
            pairs.push(("fallback".into(), Json::Str(fallback.name().into())));
            pairs.push(("cause".into(), Json::Str(cause.name().into())));
        }
        TaskResult::CertFailed { stage, reason } => {
            pairs.push(("stage".into(), Json::Str(format!("{stage:?}"))));
            pairs.push(("reason".into(), Json::Str(reason.clone())));
        }
        TaskResult::Panicked { message } => {
            pairs.push(("message".into(), Json::Str(message.clone())));
        }
        _ => {}
    }
    if let Some(out) = report.result.output() {
        pairs.push(("alg_value".into(), Json::Num(out.alg_value)));
        pairs.push(("ref_value".into(), Json::Num(out.ref_value)));
        if let Some(price) = out.price() {
            pairs.push(("price".into(), Json::Num(price)));
        }
        pairs.push(("scheduled".into(), Json::Num(out.scheduled as f64)));
        pairs.push(("preemptions".into(), Json::Num(out.preemptions as f64)));
    }
    Json::Obj(pairs)
}
