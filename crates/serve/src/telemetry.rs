//! Live telemetry for the daemon: the sampler options, the Prometheus
//! scrape listener, and the flight-dump plumbing.
//!
//! Only compiled under the `telemetry` feature. The windowed sample math
//! and the exposition builder live in [`pobp_core::metrics`]; the bounded
//! event ring lives in [`pobp_core::flight`]. This module holds the
//! serve-specific glue:
//!
//! * [`TelemetryOptions`] — the `--sample-ms` / `--metrics-addr` /
//!   `--flight-dir` knobs, carried on
//!   [`ServiceConfig`](crate::service::ServiceConfig);
//! * [`spawn_metrics_listener`] — a minimal hand-rolled HTTP/1.1 responder
//!   (request line + headers in, one `text/plain; version=0.0.4` body out)
//!   serving [`Service::prometheus_text`] on every `GET /metrics`;
//! * the flight-dump file naming used by
//!   [`Service::dump_flight`](crate::service::Service::dump_flight).
//!
//! Everything here is wall-clock telemetry: scrapes and dumps never touch
//! the registry's durable bytes, job results, or logical traces (see the
//! determinism contract in `docs/observability.md`).

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use pobp_core::metrics::PROM_CONTENT_TYPE;

use crate::service::Service;

/// Live-telemetry knobs (all optional; the defaults sample once a second
/// with no scrape listener and no flight directory).
#[derive(Clone, Debug)]
pub struct TelemetryOptions {
    /// Sampler period in milliseconds; `0` disables the background sampler
    /// thread entirely (the `metrics` op then samples on demand — the
    /// deterministic-test mode).
    pub sample_ms: u64,
    /// Samples retained in the window ring; with the default period the
    /// derived rates are trailing averages over ≈ this many seconds.
    pub window: usize,
    /// Directory for flight-recorder dumps (created if missing). `None`
    /// disables automatic dumps and the `dump-flight` op.
    pub flight_dir: Option<PathBuf>,
    /// Address for the Prometheus scrape listener (e.g. `127.0.0.1:0`).
    /// `None` means no listener. Honoured by
    /// [`run_server`](crate::server::run_server), not by an embedded
    /// [`Service`].
    pub metrics_addr: Option<String>,
}

impl Default for TelemetryOptions {
    fn default() -> Self {
        TelemetryOptions { sample_ms: 1000, window: 60, flight_dir: None, metrics_addr: None }
    }
}

/// Binds `addr` and serves Prometheus text exposition from a background
/// thread, returning the bound address (bind port `0` to let the OS pick).
///
/// The accept loop is serial — scrapes are small, periodic, and cheap to
/// build — and the thread runs for the life of the process; it never
/// touches daemon state beyond read-only snapshots.
pub fn spawn_metrics_listener(addr: &str, service: Arc<Service>) -> io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new().name("pobp-serve-metrics".into()).spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            if let Err(e) = handle_scrape(stream, &service) {
                // Scrape hiccups (slow client, disconnect) are routine.
                if e.kind() != io::ErrorKind::UnexpectedEof {
                    eprintln!("serve: metrics scrape error: {e}");
                }
            }
        }
    })?;
    Ok(local)
}

/// Answers one HTTP request on `stream`: `GET /` or `GET /metrics` gets the
/// exposition body, anything else a 404. Headers are read and discarded;
/// the response always closes the connection.
fn handle_scrape(stream: TcpStream, service: &Service) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut request = String::new();
    reader.read_line(&mut request)?;
    // Drain the header block; scrapers send nothing we need.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let path = request.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = if path == "/" || path == "/metrics" {
        ("200 OK", service.prometheus_text())
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {PROM_CONTENT_TYPE}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}
