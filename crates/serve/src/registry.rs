//! The durable job registry: an event-sourced map from job id to record.
//!
//! The registry is a **pure function of its event sequence**: the live
//! daemon mutates it only through [`Registry::apply`], the journal persists
//! exactly those [`Event`]s, and recovery replays them through the same
//! `apply` — so a registry recovered after `kill -9` is identical (same
//! `PartialEq` value) to the one that was lost, up to the last fully
//! written journal record. The property test in `tests/prop_journal.rs`
//! holds this invariant over arbitrary event interleavings and truncated
//! journal tails.
//!
//! `apply` is deliberately tolerant of the replay shapes crash recovery
//! produces: a `Start` for a job that is already running (the daemon
//! restarted mid-run and re-claimed it), a duplicate event tail replayed on
//! top of a snapshot that already contains it (compaction crashed between
//! the snapshot rename and the journal truncate). Transitions out of a
//! terminal state are ignored, never an error.

use std::collections::BTreeMap;

use crate::job::{key_hex, JobSpec, JobStatus};
use crate::json::{obj, Json};

/// A state transition of one job. What the journal persists.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// The job was admitted: registered as [`JobStatus::Queued`].
    Submit {
        /// Id assigned at admission (dense, starting at 1).
        id: u64,
        /// The validated spec.
        spec: JobSpec,
    },
    /// A worker claimed the job: [`JobStatus::Running`].
    Start {
        /// The claimed job.
        id: u64,
    },
    /// The job reached a terminal engine outcome. `result` is the
    /// protocol-shaped result object (carries a `status` field:
    /// `ok`/`degraded`/`panicked`/`timed_out`/`cert_failed`/`cancelled`).
    Finish {
        /// The finished job.
        id: u64,
        /// The result object served to clients.
        result: Json,
    },
    /// The job was cancelled by request.
    Cancel {
        /// The cancelled job.
        id: u64,
    },
}

impl Event {
    /// The id of the job this event concerns.
    pub fn id(&self) -> u64 {
        match self {
            Event::Submit { id, .. }
            | Event::Start { id }
            | Event::Finish { id, .. }
            | Event::Cancel { id } => *id,
        }
    }

    /// The event as a journal JSON object (without the `seq` envelope —
    /// [`crate::journal::Journal`] adds that).
    pub fn to_json(&self) -> Json {
        match self {
            Event::Submit { id, spec } => obj([
                ("ev", Json::Str("submit".into())),
                ("id", Json::Num(*id as f64)),
                ("spec", spec.to_json()),
            ]),
            Event::Start { id } => {
                obj([("ev", Json::Str("start".into())), ("id", Json::Num(*id as f64))])
            }
            Event::Finish { id, result } => obj([
                ("ev", Json::Str("finish".into())),
                ("id", Json::Num(*id as f64)),
                ("result", result.clone()),
            ]),
            Event::Cancel { id } => {
                obj([("ev", Json::Str("cancel".into())), ("id", Json::Num(*id as f64))])
            }
        }
    }

    /// Parses a journal JSON object back into an event.
    pub fn from_json(v: &Json) -> Result<Event, String> {
        let id = v.get("id").and_then(Json::as_u64).ok_or("event without a numeric id")?;
        match v.get("ev").and_then(Json::as_str) {
            Some("submit") => {
                let spec = v.get("spec").ok_or("submit without a spec")?;
                Ok(Event::Submit { id, spec: JobSpec::from_json(spec)? })
            }
            Some("start") => Ok(Event::Start { id }),
            Some("finish") => Ok(Event::Finish {
                id,
                result: v.get("result").cloned().ok_or("finish without a result")?,
            }),
            Some("cancel") => Ok(Event::Cancel { id }),
            other => Err(format!("unknown event kind {other:?}")),
        }
    }
}

/// One job's full registry record.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    /// The job id.
    pub id: u64,
    /// The validated spec as admitted.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// The terminal result object, once finished. `None` while queued or
    /// running, and for jobs cancelled before reaching the engine.
    pub result: Option<Json>,
}

impl JobRecord {
    /// The record as the protocol JSON object (`status`/`list` responses,
    /// snapshot entries).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("id".into(), Json::Num(self.id as f64)),
            ("name".into(), Json::Str(self.spec.name.clone())),
            ("status".into(), Json::Str(self.status.name().into())),
            ("key".into(), Json::Str(key_hex(self.spec.content_key()))),
            ("spec".into(), self.spec.to_json()),
        ];
        if let Some(r) = &self.result {
            pairs.push(("result".into(), r.clone()));
        }
        Json::Obj(pairs)
    }

    /// Parses a snapshot entry back into a record.
    pub fn from_json(v: &Json) -> Result<JobRecord, String> {
        let id = v.get("id").and_then(Json::as_u64).ok_or("record without an id")?;
        let spec = JobSpec::from_json(v.get("spec").ok_or("record without a spec")?)?;
        let status_name = v.get("status").and_then(Json::as_str).ok_or("record without a status")?;
        let status = JobStatus::parse(status_name)
            .ok_or_else(|| format!("unknown status {status_name:?}"))?;
        Ok(JobRecord { id, spec, status, result: v.get("result").cloned() })
    }
}

/// The in-memory registry: id → record, plus the id allocator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    jobs: BTreeMap<u64, JobRecord>,
    next_id: u64,
}

impl Registry {
    /// An empty registry (ids start at 1).
    pub fn new() -> Self {
        Registry { jobs: BTreeMap::new(), next_id: 1 }
    }

    /// Allocates the next job id (does **not** register anything — the
    /// subsequent [`Event::Submit`] does).
    pub fn allocate_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Looks up one job.
    pub fn get(&self, id: u64) -> Option<&JobRecord> {
        self.jobs.get(&id)
    }

    /// All records in id order.
    pub fn iter(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.values()
    }

    /// Number of registered jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the registry holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Applies one event. Total: invalid transitions (events for unknown
    /// ids, transitions out of a terminal state) are ignored rather than
    /// panicking — the journal is an external input after a crash.
    pub fn apply(&mut self, event: &Event) {
        match event {
            Event::Submit { id, spec } => {
                // Replays may re-submit an id the snapshot already holds;
                // keep the richer (further-progressed) record in that case.
                self.jobs.entry(*id).or_insert_with(|| JobRecord {
                    id: *id,
                    spec: spec.clone(),
                    status: JobStatus::Queued,
                    result: None,
                });
                self.next_id = self.next_id.max(*id + 1);
            }
            Event::Start { id } => {
                if let Some(job) = self.jobs.get_mut(id) {
                    if !job.status.is_terminal() {
                        job.status = JobStatus::Running;
                    }
                }
            }
            Event::Finish { id, result } => {
                if let Some(job) = self.jobs.get_mut(id) {
                    if !job.status.is_terminal() {
                        job.status = match result.get("status").and_then(Json::as_str) {
                            Some("ok") => JobStatus::Done,
                            Some("degraded") => JobStatus::Degraded,
                            Some("cancelled") => JobStatus::Cancelled,
                            _ => JobStatus::Failed,
                        };
                        job.result = Some(result.clone());
                    }
                }
            }
            Event::Cancel { id } => {
                if let Some(job) = self.jobs.get_mut(id) {
                    if !job.status.is_terminal() {
                        job.status = JobStatus::Cancelled;
                    }
                }
            }
        }
    }

    /// Ids of jobs that must be re-queued after crash recovery: everything
    /// the lost daemon had admitted but not finished. Running jobs go back
    /// to [`JobStatus::Queued`] — their solve died with the process.
    pub fn recover_pending(&mut self) -> Vec<u64> {
        let mut pending = Vec::new();
        for job in self.jobs.values_mut() {
            if !job.status.is_terminal() {
                job.status = JobStatus::Queued;
                pending.push(job.id);
            }
        }
        pending
    }

    /// The registry as a snapshot JSON document (see
    /// [`crate::journal::Journal`] for when snapshots are written).
    pub fn to_snapshot_json(&self, seq: u64) -> Json {
        obj([
            ("schema", Json::Num(1.0)),
            ("seq", Json::Num(seq as f64)),
            ("next_id", Json::Num(self.next_id as f64)),
            ("jobs", Json::Arr(self.jobs.values().map(JobRecord::to_json).collect())),
        ])
    }

    /// Restores a registry from a snapshot document, returning the journal
    /// sequence number the snapshot covers.
    pub fn from_snapshot_json(v: &Json) -> Result<(Registry, u64), String> {
        let seq = v.get("seq").and_then(Json::as_u64).ok_or("snapshot without seq")?;
        let next_id = v.get("next_id").and_then(Json::as_u64).unwrap_or(1);
        let mut jobs = BTreeMap::new();
        for entry in v.get("jobs").and_then(Json::as_arr).unwrap_or(&[]) {
            let record = JobRecord::from_json(entry)?;
            jobs.insert(record.id, record);
        }
        let next_id = next_id.max(jobs.keys().next_back().map_or(0, |id| id + 1)).max(1);
        Ok((Registry { jobs, next_id }, seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_engine::Algo;

    fn submit(reg: &mut Registry, prio: i64) -> u64 {
        let id = reg.allocate_id();
        let mut spec = JobSpec::cell(Algo::Reduction, 8, 1, id);
        spec.priority = prio;
        reg.apply(&Event::Submit { id, spec });
        id
    }

    fn ok_result() -> Json {
        obj([("status", Json::Str("ok".into())), ("value", Json::Num(4.0))])
    }

    #[test]
    fn lifecycle_transitions() {
        let mut reg = Registry::new();
        let id = submit(&mut reg, 0);
        assert_eq!(reg.get(id).unwrap().status, JobStatus::Queued);
        reg.apply(&Event::Start { id });
        assert_eq!(reg.get(id).unwrap().status, JobStatus::Running);
        reg.apply(&Event::Finish { id, result: ok_result() });
        let job = reg.get(id).unwrap();
        assert_eq!(job.status, JobStatus::Done);
        assert!(job.result.is_some());
        // Terminal states are sticky: late cancels and restarts are no-ops.
        reg.apply(&Event::Cancel { id });
        reg.apply(&Event::Start { id });
        assert_eq!(reg.get(id).unwrap().status, JobStatus::Done);
    }

    #[test]
    fn cancel_of_queued_job_sticks() {
        let mut reg = Registry::new();
        let id = submit(&mut reg, 0);
        reg.apply(&Event::Cancel { id });
        assert_eq!(reg.get(id).unwrap().status, JobStatus::Cancelled);
        reg.apply(&Event::Start { id });
        assert_eq!(reg.get(id).unwrap().status, JobStatus::Cancelled);
    }

    #[test]
    fn events_for_unknown_ids_are_ignored() {
        let mut reg = Registry::new();
        reg.apply(&Event::Start { id: 42 });
        reg.apply(&Event::Finish { id: 42, result: ok_result() });
        reg.apply(&Event::Cancel { id: 42 });
        assert!(reg.is_empty());
    }

    #[test]
    fn recover_pending_requeues_running_and_queued() {
        let mut reg = Registry::new();
        let a = submit(&mut reg, 0);
        let b = submit(&mut reg, 0);
        let c = submit(&mut reg, 0);
        reg.apply(&Event::Start { id: b });
        reg.apply(&Event::Finish { id: c, result: ok_result() });
        let pending = reg.recover_pending();
        assert_eq!(pending, vec![a, b]);
        assert_eq!(reg.get(a).unwrap().status, JobStatus::Queued);
        assert_eq!(reg.get(b).unwrap().status, JobStatus::Queued);
        assert_eq!(reg.get(c).unwrap().status, JobStatus::Done);
    }

    #[test]
    fn snapshot_roundtrips_and_preserves_id_allocator() {
        let mut reg = Registry::new();
        let a = submit(&mut reg, 3);
        submit(&mut reg, -1);
        reg.apply(&Event::Finish { id: a, result: ok_result() });
        let snap = reg.to_snapshot_json(17);
        let (back, seq) = Registry::from_snapshot_json(&snap).unwrap();
        assert_eq!(seq, 17);
        assert_eq!(back, reg);
        let mut back = back;
        assert_eq!(back.allocate_id(), 3);
    }

    #[test]
    fn event_json_roundtrips() {
        let mut spec = JobSpec::cell(Algo::OnlineDjn, 9, 2, 4);
        spec.name = "zeta".into();
        let events = [
            Event::Submit { id: 5, spec },
            Event::Start { id: 5 },
            Event::Finish { id: 5, result: ok_result() },
            Event::Cancel { id: 5 },
        ];
        for ev in &events {
            let back = Event::from_json(&ev.to_json()).unwrap();
            assert_eq!(&back, ev);
        }
    }
}
