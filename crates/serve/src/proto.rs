//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, over a plain TCP
//! stream. Every request is an object with an `"op"` field; every response
//! has `"ok"` (and, for rejections specifically, `"rejected": true` with a
//! structured reason — clients distinguish *rejected* from *errored*).
//! The full op table lives in `docs/serve.md`; this module is the single
//! place that turns protocol lines into [`Service`] calls.

use crate::job::{key_hex, JobSpec, JobStatus};
use crate::json::{obj, Json};
use crate::service::{CancelOutcome, Service, SubmitOutcome};

/// What the connection loop should do after sending the response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Keep reading requests.
    Continue,
    /// Stop the daemon (`drain`: finish the queue first).
    Shutdown {
        /// Whether to drain the queue before stopping.
        drain: bool,
    },
}

/// An error response.
pub fn err(msg: &str) -> Json {
    obj([("ok", Json::Bool(false)), ("error", Json::Str(msg.into()))])
}

/// Handles one request line against the service. Total: malformed input
/// produces an error response, never a panic or a dropped connection.
pub fn handle_line(service: &Service, line: &str) -> (Json, Control) {
    let parsed = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return (err(&format!("bad json: {e}")), Control::Continue),
    };
    let Some(op) = parsed.get("op").and_then(Json::as_str) else {
        return (err("missing op"), Control::Continue);
    };
    match op {
        "ping" => (obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))]), Control::Continue),
        "submit" => (handle_submit(service, &parsed), Control::Continue),
        "status" => (handle_status(service, &parsed), Control::Continue),
        "result" => (handle_result(service, &parsed), Control::Continue),
        "list" => (handle_list(service, &parsed), Control::Continue),
        "cancel" => (handle_cancel(service, &parsed), Control::Continue),
        "stats" => {
            (obj([("ok", Json::Bool(true)), ("stats", service.stats_json())]), Control::Continue)
        }
        #[cfg(feature = "telemetry")]
        "metrics" => (
            obj([("ok", Json::Bool(true)), ("metrics", service.metrics_json())]),
            Control::Continue,
        ),
        #[cfg(feature = "telemetry")]
        "dump-flight" => (handle_dump_flight(service), Control::Continue),
        "shutdown" => {
            let drain = parsed.get("drain").and_then(Json::as_bool).unwrap_or(true);
            (
                obj([("ok", Json::Bool(true)), ("stopping", Json::Bool(true))]),
                Control::Shutdown { drain },
            )
        }
        other => (err(&format!("unknown op {other:?}")), Control::Continue),
    }
}

#[cfg(feature = "telemetry")]
fn handle_dump_flight(service: &Service) -> Json {
    match service.dump_flight("manual") {
        Ok(Some(path)) => obj([
            ("ok", Json::Bool(true)),
            ("path", Json::Str(path.display().to_string())),
        ]),
        Ok(None) => err("no --flight-dir configured"),
        Err(e) => err(&format!("flight dump failed: {e}")),
    }
}

fn handle_submit(service: &Service, req: &Json) -> Json {
    let Some(spec_json) = req.get("spec") else { return err("submit without a spec") };
    let spec = match JobSpec::from_json(spec_json) {
        Ok(s) => s,
        Err(e) => return err(&format!("bad spec: {e}")),
    };
    match service.submit(spec) {
        Ok(SubmitOutcome::Accepted { id, status, key, cached }) => obj([
            ("ok", Json::Bool(true)),
            ("id", Json::Num(id as f64)),
            ("status", Json::Str(status.name().into())),
            ("key", Json::Str(key_hex(key))),
            ("cached", Json::Bool(cached)),
        ]),
        Ok(SubmitOutcome::Rejected { reason, queue_depth }) => obj([
            ("ok", Json::Bool(false)),
            ("rejected", Json::Bool(true)),
            ("reason", Json::Str(reason.into())),
            ("queue_depth", Json::Num(queue_depth as f64)),
        ]),
        Err(e) => err(&format!("journal write failed: {e}")),
    }
}

fn req_id(req: &Json) -> Result<u64, Json> {
    req.get("id").and_then(Json::as_u64).ok_or_else(|| err("missing id"))
}

fn handle_status(service: &Service, req: &Json) -> Json {
    let id = match req_id(req) {
        Ok(id) => id,
        Err(e) => return e,
    };
    match service.job(id) {
        Some(job) => obj([("ok", Json::Bool(true)), ("job", job.to_json())]),
        None => err("not_found"),
    }
}

fn handle_result(service: &Service, req: &Json) -> Json {
    let id = match req_id(req) {
        Ok(id) => id,
        Err(e) => return e,
    };
    let Some(job) = service.job(id) else { return err("not_found") };
    if !job.status.is_terminal() {
        return obj([
            ("ok", Json::Bool(false)),
            ("error", Json::Str("not finished".into())),
            ("status", Json::Str(job.status.name().into())),
        ]);
    }
    let mut pairs = vec![
        ("ok".into(), Json::Bool(true)),
        ("id".into(), Json::Num(job.id as f64)),
        ("status".into(), Json::Str(job.status.name().into())),
        ("key".into(), Json::Str(key_hex(job.spec.content_key()))),
    ];
    if let Some(result) = &job.result {
        pairs.push(("result".into(), result.clone()));
    }
    Json::Obj(pairs)
}

fn handle_list(service: &Service, req: &Json) -> Json {
    let status = match req.get("status").and_then(Json::as_str) {
        None => None,
        Some(s) => match JobStatus::parse(s) {
            Some(st) => Some(st),
            None => return err(&format!("unknown status {s:?}")),
        },
    };
    let limit = req.get("limit").and_then(Json::as_u64).unwrap_or(1000) as usize;
    let jobs = service.list(status, limit);
    obj([
        ("ok", Json::Bool(true)),
        ("count", Json::Num(jobs.len() as f64)),
        ("jobs", Json::Arr(jobs.iter().map(|j| j.to_json()).collect())),
    ])
}

fn handle_cancel(service: &Service, req: &Json) -> Json {
    let id = match req_id(req) {
        Ok(id) => id,
        Err(e) => return e,
    };
    match service.cancel(id) {
        CancelOutcome::NotFound => err("not_found"),
        CancelOutcome::AlreadyTerminal(status) => obj([
            ("ok", Json::Bool(true)),
            ("id", Json::Num(id as f64)),
            ("cancelled", Json::Bool(false)),
            ("status", Json::Str(status.name().into())),
        ]),
        CancelOutcome::CancelledQueued => obj([
            ("ok", Json::Bool(true)),
            ("id", Json::Num(id as f64)),
            ("cancelled", Json::Bool(true)),
            ("status", Json::Str("cancelled".into())),
        ]),
        CancelOutcome::SignalledRunning => obj([
            ("ok", Json::Bool(true)),
            ("id", Json::Num(id as f64)),
            ("cancelled", Json::Bool(true)),
            ("status", Json::Str("cancelling".into())),
        ]),
    }
}
