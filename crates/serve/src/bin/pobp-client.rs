//! `pobp-client`: command-line client for the `pobp serve` daemon.
//!
//! Every subcommand prints exactly one JSON object to stdout (the daemon's
//! response, or the soak report) so scripts can pipe it straight into a
//! JSON tool. Outcomes are distinguished by exit code:
//!
//! * `0` — success (job done or degraded-but-certified, op accepted).
//! * `1` — usage error or transport failure (no daemon, bad flags).
//! * `3` — the daemon rejected the submission (structured backpressure).
//! * `4` — the job finished `failed` or `cancelled`, or a soak invariant
//!   was violated.
//! * `5` — the job failed the certification trust boundary
//!   (`cert_failed`).
//!
//! See `docs/serve.md` for the protocol and the full flag reference.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use pobp_core::cli::{flag_value, has_flag, parse_num_strict};
use pobp_serve::json::{obj, Json};
use pobp_serve::soak::{run_soak, SoakConfig};
use pobp_serve::Client;

const EXIT_OK: i32 = 0;
const EXIT_USAGE: i32 = 1;
const EXIT_REJECTED: i32 = 3;
const EXIT_FAILED: i32 = 4;
const EXIT_CERT_FAILED: i32 = 5;

fn usage() {
    eprintln!(
        "pobp-client — client for the pobp serve daemon (docs/serve.md)

USAGE:
    pobp-client <command> [--addr HOST:PORT] [flags]

COMMANDS:
    ping                         is a daemon answering?
    submit [spec flags] [--wait] submit one job
    status --id N                one job's record
    result --id N [--wait]       a finished job's result
    list [--status S] [--limit N]
    cancel --id N
    stats                        daemon counters and queue depths
    top [--interval-ms MS] [--count N]
                                 live telemetry view (needs a daemon
                                 built with --features telemetry)
    dump-flight                  ask the daemon to write a flight dump
    shutdown [--cancel]          stop the daemon (drains by default)
    soak --seconds N --seed S [--journal DIR] [--expect-restart]

SPEC FLAGS (submit):
    --name TAG --alg A --n N --k K --seed S --machines M
    --exact-ref --family F --priority P --deadline-ms MS

Exit codes: 0 ok, 1 usage/transport, 3 rejected, 4 failed/cancelled,
5 cert_failed."
    );
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        usage();
        return EXIT_USAGE;
    };
    let addr = match flag_value(&args, "--addr") {
        Ok(v) => v.unwrap_or_else(|| "127.0.0.1:7411".into()),
        Err(e) => return usage_err(&e),
    };
    let client = Client::new(&addr, Duration::from_secs(10));
    match cmd.as_str() {
        "ping" => {
            let ok = client.ping();
            println!("{}", obj([("ok", Json::Bool(ok)), ("addr", Json::Str(addr))]));
            if ok {
                EXIT_OK
            } else {
                EXIT_USAGE
            }
        }
        "submit" => cmd_submit(&client, &args),
        "status" => cmd_simple_id(&client, &args, |c, id| c.status(id)),
        "result" => cmd_result(&client, &args),
        "list" => cmd_list(&client, &args),
        "cancel" => cmd_simple_id(&client, &args, |c, id| c.cancel(id)),
        "stats" => print_response(client.stats()),
        "top" => cmd_top(&client, &args),
        "dump-flight" => cmd_dump_flight(&client),
        "shutdown" => print_response(client.shutdown(!has_flag(&args, "--cancel"))),
        "soak" => cmd_soak(&addr, &args),
        other => {
            eprintln!("pobp-client: unknown command {other:?}");
            usage();
            EXIT_USAGE
        }
    }
}

fn usage_err(msg: &str) -> i32 {
    eprintln!("pobp-client: {msg}");
    EXIT_USAGE
}

/// Prints the response object and maps it to an exit code.
fn print_response(resp: std::io::Result<Json>) -> i32 {
    match resp {
        Ok(v) => {
            println!("{v}");
            if v.get("ok").and_then(Json::as_bool) == Some(true) {
                EXIT_OK
            } else if v.get("rejected").and_then(Json::as_bool) == Some(true) {
                EXIT_REJECTED
            } else {
                EXIT_USAGE
            }
        }
        Err(e) => usage_err(&format!("transport error: {e}")),
    }
}

/// Builds the spec object from `submit` flags.
fn spec_from_flags(args: &[String]) -> Result<Json, String> {
    let mut pairs: Vec<(String, Json)> = Vec::new();
    if let Some(name) = flag_value(args, "--name")? {
        pairs.push(("name".into(), Json::Str(name)));
    }
    if let Some(alg) = flag_value(args, "--alg")? {
        pairs.push(("alg".into(), Json::Str(alg)));
    }
    for (flag_name, key) in [
        ("--n", "n"),
        ("--k", "k"),
        ("--seed", "seed"),
        ("--machines", "machines"),
        ("--deadline-ms", "deadline_ms"),
    ] {
        if let Some(v) = flag_value(args, flag_name)? {
            let num: u64 = v
                .parse()
                .map_err(|e| format!("invalid value for {flag_name}: {e} (got {v:?})"))?;
            pairs.push((key.into(), Json::Num(num as f64)));
        }
    }
    let priority: i64 = parse_num_strict(args, "--priority", 0)?;
    if priority != 0 {
        pairs.push(("priority".into(), Json::Num(priority as f64)));
    }
    if has_flag(args, "--exact-ref") {
        pairs.push(("exact_ref".into(), Json::Bool(true)));
    }
    if let Some(family) = flag_value(args, "--family")? {
        pairs.push(("family".into(), Json::Str(family)));
    }
    Ok(Json::Obj(pairs))
}

/// Exit code for a terminal job status (inspecting the result object to
/// tell `cert_failed` apart from the other failures).
fn exit_for_terminal(status: &str, result: Option<&Json>) -> i32 {
    match status {
        "done" | "degraded" => EXIT_OK,
        "cancelled" => EXIT_FAILED,
        _ => {
            let kind = result.and_then(|r| r.get("status")).and_then(Json::as_str);
            if kind == Some("cert_failed") {
                EXIT_CERT_FAILED
            } else {
                EXIT_FAILED
            }
        }
    }
}

/// Polls `result` until the job is terminal, then prints that response.
fn wait_for_result(client: &Client, id: u64, timeout: Duration) -> i32 {
    let deadline = Instant::now() + timeout;
    loop {
        match client.result(id) {
            Ok(v) => {
                if v.get("ok").and_then(Json::as_bool) == Some(true) {
                    println!("{v}");
                    let status = v.get("status").and_then(Json::as_str).unwrap_or("?");
                    return exit_for_terminal(status, v.get("result"));
                }
                // "not finished" — keep polling.
            }
            Err(e) => return usage_err(&format!("transport error: {e}")),
        }
        if Instant::now() >= deadline {
            return usage_err(&format!("job {id} not finished within {timeout:?}"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn cmd_submit(client: &Client, args: &[String]) -> i32 {
    let spec = match spec_from_flags(args) {
        Ok(s) => s,
        Err(e) => return usage_err(&e),
    };
    let resp = match client.submit(spec) {
        Ok(r) => r,
        Err(e) => return usage_err(&format!("transport error: {e}")),
    };
    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
        println!("{resp}");
        return if resp.get("rejected").and_then(Json::as_bool) == Some(true) {
            EXIT_REJECTED
        } else {
            EXIT_USAGE
        };
    }
    let id = resp.get("id").and_then(Json::as_u64).unwrap_or(0);
    if has_flag(args, "--wait") {
        let timeout = match parse_num_strict(args, "--wait-secs", 300u64) {
            Ok(s) => Duration::from_secs(s),
            Err(e) => return usage_err(&e),
        };
        wait_for_result(client, id, timeout)
    } else {
        println!("{resp}");
        EXIT_OK
    }
}

fn cmd_result(client: &Client, args: &[String]) -> i32 {
    let id = match parse_num_strict(args, "--id", u64::MAX) {
        Ok(u64::MAX) => return usage_err("result needs --id N"),
        Ok(id) => id,
        Err(e) => return usage_err(&e),
    };
    if has_flag(args, "--wait") {
        let timeout = match parse_num_strict(args, "--wait-secs", 300u64) {
            Ok(s) => Duration::from_secs(s),
            Err(e) => return usage_err(&e),
        };
        return wait_for_result(client, id, timeout);
    }
    match client.result(id) {
        Ok(v) => {
            println!("{v}");
            if v.get("ok").and_then(Json::as_bool) == Some(true) {
                let status = v.get("status").and_then(Json::as_str).unwrap_or("?");
                exit_for_terminal(status, v.get("result"))
            } else {
                EXIT_USAGE
            }
        }
        Err(e) => usage_err(&format!("transport error: {e}")),
    }
}

fn cmd_simple_id(
    client: &Client,
    args: &[String],
    op: impl Fn(&Client, u64) -> std::io::Result<Json>,
) -> i32 {
    let id = match parse_num_strict(args, "--id", u64::MAX) {
        Ok(u64::MAX) => return usage_err("this command needs --id N"),
        Ok(id) => id,
        Err(e) => return usage_err(&e),
    };
    print_response(op(client, id))
}

fn cmd_list(client: &Client, args: &[String]) -> i32 {
    let mut pairs = vec![("op".into(), Json::Str("list".into()))];
    match flag_value(args, "--status") {
        Ok(Some(s)) => pairs.push(("status".into(), Json::Str(s))),
        Ok(None) => {}
        Err(e) => return usage_err(&e),
    }
    match parse_num_strict(args, "--limit", 1000u64) {
        Ok(limit) => pairs.push(("limit".into(), Json::Num(limit as f64))),
        Err(e) => return usage_err(&e),
    }
    print_response(client.request(&Json::Obj(pairs)))
}

/// `top`: poll the daemon's `metrics` op and render a live dashboard.
///
/// On a TTY the view repaints in place (ANSI clear); piped output gets one
/// plain block per tick so CI can run `top --count 1` and grep the text.
/// `--count 0` (the default) polls until interrupted.
#[cfg(feature = "telemetry")]
fn cmd_top(client: &Client, args: &[String]) -> i32 {
    use std::io::{IsTerminal, Write as _};
    let interval = match parse_num_strict(args, "--interval-ms", 1000u64) {
        Ok(ms) => Duration::from_millis(ms.max(50)),
        Err(e) => return usage_err(&e),
    };
    let count: u64 = match parse_num_strict(args, "--count", 0u64) {
        Ok(c) => c,
        Err(e) => return usage_err(&e),
    };
    let live = std::io::stdout().is_terminal();
    let mut ticks = 0u64;
    loop {
        let resp = match client.metrics() {
            Ok(v) => v,
            Err(e) => return usage_err(&format!("transport error: {e}")),
        };
        if resp.get("ok").and_then(Json::as_bool) != Some(true) {
            eprintln!("pobp-client top: daemon refused the metrics op: {resp}");
            return EXIT_USAGE;
        }
        let Some(m) = resp.get("metrics") else {
            eprintln!("pobp-client top: malformed metrics response: {resp}");
            return EXIT_USAGE;
        };
        if live {
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_top(m));
        let _ = std::io::stdout().flush();
        ticks += 1;
        if count != 0 && ticks >= count {
            return EXIT_OK;
        }
        std::thread::sleep(interval);
    }
}

#[cfg(not(feature = "telemetry"))]
fn cmd_top(_client: &Client, _args: &[String]) -> i32 {
    usage_err("top requires a pobp-client built with --features telemetry")
}

#[cfg(feature = "telemetry")]
fn cmd_dump_flight(client: &Client) -> i32 {
    print_response(client.dump_flight())
}

#[cfg(not(feature = "telemetry"))]
fn cmd_dump_flight(_client: &Client) -> i32 {
    usage_err("dump-flight requires a pobp-client built with --features telemetry")
}

/// Formats one `metrics` payload as the `top` text block.
#[cfg(feature = "telemetry")]
fn render_top(m: &Json) -> String {
    let num = |key: &str| m.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    let rate = |key: &str| {
        m.get("rates")
            .and_then(|r| r.get(key))
            .and_then(Json::as_f64)
            .map_or_else(|| "   -".into(), |v| format!("{v:.1}/s"))
    };
    let ratio = |key: &str| {
        m.get(key)
            .and_then(Json::as_f64)
            .map_or_else(|| "   -".into(), |v| format!("{:.1}%", v * 100.0))
    };
    let mut out = String::new();
    out.push_str(&format!(
        "pobp serve - up {:.1}s   window {:.1}s over {} samples @ {}ms\n",
        num("uptime_ms") / 1000.0,
        num("window_secs"),
        num("samples"),
        num("sample_ms"),
    ));
    out.push_str(&format!(
        "queue    {:>4} / {} queued   {:>3} running   {:>5} jobs   journal {:.1} KiB\n",
        num("queued"),
        num("queue_cap"),
        num("running"),
        num("jobs"),
        num("journal_bytes") / 1024.0,
    ));
    if m.get("journal_poisoned").and_then(Json::as_bool) == Some(true) {
        out.push_str("!! journal poisoned: appends failing, daemon is read-only\n");
    }
    out.push_str(&format!(
        "rates    accepted {}   finished {}   rejected {}   cache-hits {}\n",
        rate("accepted_per_s"),
        rate("finished_per_s"),
        rate("rejected_per_s"),
        rate("cache_hits_per_s"),
    ));
    out.push_str(&format!(
        "ratios   cache-hit {}   degrade {}\n",
        ratio("cache_hit_ratio"),
        ratio("degrade_ratio"),
    ));
    let lat = |q: &str| {
        m.get("latency_ms").and_then(|l| l.get(q)).and_then(Json::as_f64).unwrap_or(0.0)
    };
    out.push_str(&format!(
        "latency  p50 {:.0}ms   p90 {:.0}ms   p99 {:.0}ms   ({} jobs measured)\n",
        lat("p50"),
        lat("p90"),
        lat("p99"),
        lat("count"),
    ));
    if let Some(Json::Obj(algs)) = m.get("per_alg") {
        if !algs.is_empty() {
            out.push_str("per-alg\n");
            for (alg, v) in algs {
                let done = v.get("done").and_then(Json::as_f64).unwrap_or(0.0);
                out.push_str(&format!("  {alg:<14} {done:>6} done\n"));
            }
        }
    }
    out
}

fn cmd_soak(addr: &str, args: &[String]) -> i32 {
    let seconds = match parse_num_strict(args, "--seconds", 30u64) {
        Ok(s) => s,
        Err(e) => return usage_err(&e),
    };
    let seed = match parse_num_strict(args, "--seed", 0u64) {
        Ok(s) => s,
        Err(e) => return usage_err(&e),
    };
    let journal_dir = match flag_value(args, "--journal") {
        Ok(v) => v.map(PathBuf::from),
        Err(e) => return usage_err(&e),
    };
    let cfg = SoakConfig {
        addr: addr.to_string(),
        seconds,
        seed,
        journal_dir,
        expect_restart: has_flag(args, "--expect-restart"),
    };
    match run_soak(&cfg) {
        Ok(report) => {
            let mut out = report.to_json();
            if let Json::Obj(pairs) = &mut out {
                pairs.insert(0, ("ok".into(), Json::Bool(true)));
            }
            println!("{out}");
            EXIT_OK
        }
        Err(e) => {
            println!("{}", obj([("ok", Json::Bool(false)), ("error", Json::Str(e.clone()))]));
            eprintln!("pobp-client soak: {e}");
            EXIT_FAILED
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_statuses_map_to_documented_exit_codes() {
        assert_eq!(exit_for_terminal("done", None), EXIT_OK);
        assert_eq!(exit_for_terminal("degraded", None), EXIT_OK);
        assert_eq!(exit_for_terminal("cancelled", None), EXIT_FAILED);
        assert_eq!(exit_for_terminal("failed", None), EXIT_FAILED);
        let cert = obj([("status", Json::Str("cert_failed".into()))]);
        assert_eq!(exit_for_terminal("failed", Some(&cert)), EXIT_CERT_FAILED);
        let panicked = obj([("status", Json::Str("panicked".into()))]);
        assert_eq!(exit_for_terminal("failed", Some(&panicked)), EXIT_FAILED);
    }

    #[test]
    fn spec_flags_round_trip_into_the_submit_object() {
        let args: Vec<String> = [
            "--name", "t", "--alg", "lsa", "--n", "12", "--k", "2", "--seed", "9",
            "--priority", "-3", "--exact-ref", "--family", "bursty",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let spec = spec_from_flags(&args).unwrap();
        assert_eq!(spec.get("alg").and_then(Json::as_str), Some("lsa"));
        assert_eq!(spec.get("n").and_then(Json::as_u64), Some(12));
        assert_eq!(spec.get("priority").and_then(Json::as_f64), Some(-3.0));
        assert_eq!(spec.get("exact_ref").and_then(Json::as_bool), Some(true));
        assert_eq!(spec.get("family").and_then(Json::as_str), Some("bursty"));
        // A flag missing its value is a loud error naming the flag.
        let bad: Vec<String> = ["--n"].iter().map(|s| s.to_string()).collect();
        assert!(spec_from_flags(&bad).unwrap_err().contains("--n"));
    }
}
