//! The randomized soak harness behind `pobp-client soak`.
//!
//! Drives a live daemon with a seeded stream of mixed operations (mostly
//! submits, plus cancels, status probes, and stats reads) for a bounded
//! wall-clock window, then quiesces and checks the service invariants:
//!
//! 1. **No lost jobs** — every submission the daemon *acknowledged* is
//!    still present and has reached a terminal state.
//! 2. **No uncertified results** — every `done`/`degraded` result carries
//!    `certified: true` and the certified value fields.
//! 3. **Replay identity** — optionally (`journal_dir`), after shutting the
//!    daemon down, replaying its journal + snapshot from disk reproduces
//!    exactly the registry the live daemon last served.
//!
//! With `expect_restart` the harness tolerates transport errors (the CI
//! durability drill `kill -9`s the daemon mid-soak and restarts it); an
//! unacknowledged submission is simply not tracked, which is precisely the
//! durability contract — acknowledgement is the moment a job becomes
//! guaranteed.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::client::Client;
use crate::job::JobStatus;
use crate::journal::replay_dir;
use crate::json::{obj, Json};

/// Soak parameters.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Daemon address.
    pub addr: String,
    /// Operation window in seconds (quiesce and checking come after).
    pub seconds: u64,
    /// RNG seed for the operation stream.
    pub seed: u64,
    /// Registry directory to replay for the identity check (requires the
    /// daemon to be shut down at the end, which this enables).
    pub journal_dir: Option<PathBuf>,
    /// Tolerate transport errors mid-run (daemon being killed/restarted).
    pub expect_restart: bool,
}

/// What the soak did and found.
#[derive(Clone, Copy, Debug, Default)]
pub struct SoakReport {
    /// Acknowledged submissions.
    pub submitted: u64,
    /// Structured rejections observed (expected under saturation).
    pub rejected: u64,
    /// Cancel requests issued.
    pub cancels: u64,
    /// Transport errors tolerated (restart window).
    pub transport_errors: u64,
    /// Terminal tallies at quiesce.
    pub done: u64,
    /// Jobs that finished degraded.
    pub degraded: u64,
    /// Jobs that finished failed.
    pub failed: u64,
    /// Jobs that finished cancelled.
    pub cancelled: u64,
    /// Serve-level cache hits reported by the daemon.
    pub cache_hits: u64,
}

impl SoakReport {
    /// The report as a JSON object (what `pobp-client soak` prints).
    pub fn to_json(&self) -> Json {
        obj([
            ("submitted", Json::Num(self.submitted as f64)),
            ("rejected", Json::Num(self.rejected as f64)),
            ("cancels", Json::Num(self.cancels as f64)),
            ("transport_errors", Json::Num(self.transport_errors as f64)),
            ("done", Json::Num(self.done as f64)),
            ("degraded", Json::Num(self.degraded as f64)),
            ("failed", Json::Num(self.failed as f64)),
            ("cancelled", Json::Num(self.cancelled as f64)),
            ("cache_hits", Json::Num(self.cache_hits as f64)),
        ])
    }
}

const ALGS: [&str; 7] =
    ["reduction", "lsa", "k0", "combined", "online-djn", "online-greedy", "online-edf"];
const FAMILIES: [&str; 5] = ["periodic", "bursty", "fig2", "fig4", "random"];

/// One random job spec. Small instances and low seed entropy on purpose:
/// fast solves keep the op rate high, and coordinate collisions exercise
/// the serve-level cache.
fn random_spec(rng: &mut StdRng) -> Json {
    let alg = if rng.random_range(0..12u32) == 0 {
        "panic"
    } else {
        ALGS[rng.random_range(0..ALGS.len())]
    };
    let n = rng.random_range(4..=20u64);
    let mut pairs = vec![
        ("name".into(), Json::Str(format!("soak-{}", rng.random_range(0..1_000_000u64)))),
        ("alg".into(), Json::Str(alg.into())),
        ("n".into(), Json::Num(n as f64)),
        ("k".into(), Json::Num(rng.random_range(1..=3u64) as f64)),
        ("seed".into(), Json::Num(rng.random_range(0..=4u64) as f64)),
        ("priority".into(), Json::Num(rng.random_range(-5..=5i64) as f64)),
    ];
    let online = alg.starts_with("online");
    if !online && rng.random_range(0..6u32) == 0 {
        pairs.push(("machines".into(), Json::Num(rng.random_range(2..=3u64) as f64)));
    }
    if !online && n <= 10 && rng.random_range(0..8u32) == 0 {
        pairs.push(("exact_ref".into(), Json::Bool(true)));
    }
    if rng.random_range(0..5u32) == 0 {
        pairs.push(("family".into(), Json::Str(FAMILIES[rng.random_range(0..FAMILIES.len())].into())));
    }
    if rng.random_range(0..4u32) == 0 {
        pairs.push(("deadline_ms".into(), Json::Num(rng.random_range(200..=1000u64) as f64)));
    }
    Json::Obj(pairs)
}

/// Runs the soak. `Err` carries the first violated invariant (or a
/// transport failure outside the tolerated window).
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, String> {
    let client = Client::new(&cfg.addr, Duration::from_secs(5));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = SoakReport::default();
    let mut acked: Vec<u64> = Vec::new();

    // Wait for the daemon to answer at all.
    let boot = Instant::now();
    while !client.ping() {
        if boot.elapsed() > Duration::from_secs(10) {
            return Err(format!("no daemon answering at {}", cfg.addr));
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    let deadline = Instant::now() + Duration::from_secs(cfg.seconds);
    while Instant::now() < deadline {
        let roll = rng.random_range(0..100u32);
        let outcome = if roll < 60 {
            client.submit(random_spec(&mut rng)).map(|resp| {
                if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                    if let Some(id) = resp.get("id").and_then(Json::as_u64) {
                        acked.push(id);
                        report.submitted += 1;
                    }
                } else if resp.get("rejected").and_then(Json::as_bool) == Some(true) {
                    report.rejected += 1;
                }
            })
        } else if roll < 75 && !acked.is_empty() {
            let id = acked[rng.random_range(0..acked.len())];
            report.cancels += 1;
            client.cancel(id).map(|_| ())
        } else if roll < 90 && !acked.is_empty() {
            let id = acked[rng.random_range(0..acked.len())];
            client.status(id).map(|_| ())
        } else {
            client.stats().map(|_| ())
        };
        if let Err(e) = outcome {
            if cfg.expect_restart {
                report.transport_errors += 1;
                std::thread::sleep(Duration::from_millis(100));
            } else {
                return Err(format!("transport error without expect_restart: {e}"));
            }
        }
    }

    // Quiesce: wait for the daemon to report nothing queued or running.
    let quiesce_deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match client.stats() {
            Ok(resp) => {
                let stats = resp.get("stats").cloned().unwrap_or(Json::Null);
                let queued = stats.get("queued").and_then(Json::as_u64).unwrap_or(1);
                let running = stats.get("running").and_then(Json::as_u64).unwrap_or(1);
                if queued == 0 && running == 0 {
                    report.cache_hits = stats.get("cache_hits").and_then(Json::as_u64).unwrap_or(0);
                    break;
                }
            }
            Err(e) if cfg.expect_restart => {
                report.transport_errors += 1;
                let _ = e;
            }
            Err(e) => return Err(format!("stats during quiesce failed: {e}")),
        }
        if Instant::now() >= quiesce_deadline {
            return Err("daemon did not quiesce within 120s".into());
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    // Invariants 1 + 2 over every acknowledged id, and capture the dump the
    // replay check compares against.
    acked.sort_unstable();
    acked.dedup();
    let mut dump: BTreeMap<u64, (String, Option<String>)> = BTreeMap::new();
    for &id in &acked {
        let resp = client.status(id).map_err(|e| format!("status({id}) failed: {e}"))?;
        if resp.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("lost job: acknowledged id {id} not found after quiesce"));
        }
        let job = resp.get("job").cloned().unwrap_or(Json::Null);
        let status_name = job.get("status").and_then(Json::as_str).unwrap_or("?").to_string();
        let status = JobStatus::parse(&status_name)
            .ok_or_else(|| format!("job {id} has unknown status {status_name:?}"))?;
        if !status.is_terminal() {
            return Err(format!("job {id} still {status_name} after quiesce"));
        }
        match status {
            JobStatus::Done => report.done += 1,
            JobStatus::Degraded => report.degraded += 1,
            JobStatus::Failed => report.failed += 1,
            JobStatus::Cancelled => report.cancelled += 1,
            _ => unreachable!("terminal checked above"),
        }
        let result = job.get("result").cloned();
        if matches!(status, JobStatus::Done | JobStatus::Degraded) {
            let r = result.as_ref().ok_or_else(|| format!("job {id} is {status_name} but has no result"))?;
            if r.get("certified").and_then(Json::as_bool) != Some(true) {
                return Err(format!("uncertified result served for job {id}"));
            }
            if r.get("alg_value").and_then(Json::as_f64).is_none() {
                return Err(format!("job {id} result has no alg_value"));
            }
        }
        dump.insert(id, (status_name, result.map(|r| r.to_string())));
    }

    // Invariant 3: shut the daemon down and replay its directory.
    if let Some(dir) = &cfg.journal_dir {
        client.shutdown(true).map_err(|e| format!("shutdown failed: {e}"))?;
        let gone = Instant::now() + Duration::from_secs(30);
        while client.ping() {
            if Instant::now() >= gone {
                return Err("daemon still answering 30s after shutdown".into());
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        let (registry, _, _) =
            replay_dir(dir).map_err(|e| format!("replay of {} failed: {e}", dir.display()))?;
        for (&id, (status_name, result)) in &dump {
            let job = registry
                .get(id)
                .ok_or_else(|| format!("replayed registry is missing job {id}"))?;
            if job.status.name() != status_name {
                return Err(format!(
                    "replay mismatch for job {id}: served {status_name}, replayed {}",
                    job.status.name()
                ));
            }
            let replayed_result = job.result.as_ref().map(|r| r.to_string());
            if &replayed_result != result {
                return Err(format!("replay mismatch for job {id}: result bytes differ"));
            }
        }
    }

    Ok(report)
}
