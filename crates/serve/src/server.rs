//! The TCP front end: accept loop, per-connection line loop, and the
//! shutdown handshake.
//!
//! Connections speak the newline-delimited JSON protocol of
//! [`crate::proto`]. The daemon prints exactly two startup lines to stdout
//! (`serve: listening on ADDR`, then a recovery summary) so scripts can
//! scrape the bound address — bind to port `0` to let the OS pick.
//!
//! Shutdown: a `shutdown` op is acknowledged immediately, then the handling
//! connection runs [`Service::stop`] to completion — workers joined, final
//! snapshot written — while the daemon keeps answering pings and stats
//! queries. Only then does it flip the stop flag and poke the listener with
//! an empty connection so the blocking `accept` wakes up, observes the
//! flag, and returns. Ordering contract: once the port goes dark, the
//! registry directory is final — external readers (the soak's
//! replay-identity check, scripted backups) may replay it without racing a
//! compaction.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::proto::{handle_line, Control};
use crate::service::{Service, ServiceConfig};

/// Shared stop handshake between connection threads and the accept loop.
struct StopFlag {
    stop: AtomicBool,
    drain: AtomicBool,
}

/// Binds `addr`, starts the service, prints the two startup lines, and
/// blocks until a `shutdown` op arrives. Returns after the service has
/// fully stopped (workers joined, final snapshot written).
pub fn run_server(addr: &str, cfg: ServiceConfig) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    #[cfg(feature = "telemetry")]
    let metrics_addr = cfg.telemetry.metrics_addr.clone();
    let service = Arc::new(Service::start(cfg)?);
    let recovery = service.recovery();
    let counters = service.counters();
    println!("serve: listening on {local}");
    println!(
        "serve: recovered snapshot_seq={} replayed={} requeued={} dropped_tail={}",
        recovery.snapshot_seq, recovery.replayed, counters.requeued, recovery.dropped_tail
    );
    // A third startup line appears only when a scrape listener was asked
    // for, so address-scraping scripts keyed on the first two lines hold.
    #[cfg(feature = "telemetry")]
    if let Some(addr) = metrics_addr {
        let bound = crate::telemetry::spawn_metrics_listener(&addr, Arc::clone(&service))?;
        println!("serve: metrics on {bound}");
    }
    io::stdout().flush()?;
    serve_loop(listener, local, service)
}

/// Runs the accept loop on an already-bound listener with an
/// already-started service — the in-process embedding the test suites use
/// (bind port `0`, read `local_addr`, serve from a thread). Blocks until a
/// `shutdown` op arrives, then stops the service and returns.
pub fn serve_listener(listener: TcpListener, service: Arc<Service>) -> io::Result<()> {
    let local = listener.local_addr()?;
    serve_loop(listener, local, service)
}

fn serve_loop(listener: TcpListener, local: SocketAddr, service: Arc<Service>) -> io::Result<()> {
    let stop = Arc::new(StopFlag { stop: AtomicBool::new(false), drain: AtomicBool::new(true) });
    for stream in listener.incoming() {
        if stop.stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve: accept failed: {e}");
                continue;
            }
        };
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            if let Err(e) = handle_conn(stream, &service, &stop, local) {
                // Disconnects are routine (the client closed mid-line);
                // only worth a note, never fatal to the daemon.
                if e.kind() != io::ErrorKind::UnexpectedEof {
                    eprintln!("serve: connection error: {e}");
                }
            }
        });
    }
    let drain = stop.drain.load(Ordering::Acquire);
    service.stop(drain);
    println!("serve: stopped (drain={drain})");
    io::stdout().flush()?;
    Ok(())
}

fn handle_conn(
    stream: TcpStream,
    service: &Service,
    stop: &StopFlag,
    local: SocketAddr,
) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, control) = handle_line(service, &line);
        writer.write_all(response.to_string().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if let Control::Shutdown { drain } = control {
            // Stop the service from this connection thread *before* waking
            // the accept loop: the daemon stays reachable while it drains,
            // and goes dark only after the final snapshot is durable — so
            // "the port stopped answering" is a safe signal to read the
            // registry directory.
            service.stop(drain);
            stop.drain.store(drain, Ordering::Release);
            stop.stop.store(true, Ordering::Release);
            // Wake the blocking accept so it observes the flag.
            let _ = TcpStream::connect(local);
            return Ok(());
        }
    }
    Ok(())
}
