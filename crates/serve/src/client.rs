//! The client side of the protocol: one request, one response, over a
//! fresh connection per request.
//!
//! Per-request connections are deliberate: the soak harness and the CI
//! durability drill talk to a daemon that gets `kill -9`ed and restarted
//! mid-conversation, and a connectionless client is trivially correct
//! across that — every request either gets a full response line or a
//! transport error the caller can retry.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::json::{obj, Json};

/// A protocol client bound to one daemon address.
#[derive(Clone, Debug)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

impl Client {
    /// A client for `addr` (e.g. `127.0.0.1:7411`) with a per-request
    /// read/write timeout.
    pub fn new(addr: &str, timeout: Duration) -> Self {
        Client { addr: addr.to_string(), timeout }
    }

    /// Sends one request object, returns the parsed response object.
    pub fn request(&self, req: &Json) -> io::Result<Json> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let mut writer = stream.try_clone()?;
        writer.write_all(req.to_string().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line)?;
        if line.trim().is_empty() {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "empty response"));
        }
        Json::parse(line.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// `ping` — whether a daemon answers at the address.
    pub fn ping(&self) -> bool {
        self.request(&obj([("op", Json::Str("ping".into()))]))
            .ok()
            .and_then(|r| r.get("pong").and_then(Json::as_bool))
            .unwrap_or(false)
    }

    /// `status` for one job id.
    pub fn status(&self, id: u64) -> io::Result<Json> {
        self.request(&obj([("op", Json::Str("status".into())), ("id", Json::Num(id as f64))]))
    }

    /// `result` for one job id.
    pub fn result(&self, id: u64) -> io::Result<Json> {
        self.request(&obj([("op", Json::Str("result".into())), ("id", Json::Num(id as f64))]))
    }

    /// `cancel` for one job id.
    pub fn cancel(&self, id: u64) -> io::Result<Json> {
        self.request(&obj([("op", Json::Str("cancel".into())), ("id", Json::Num(id as f64))]))
    }

    /// `stats`.
    pub fn stats(&self) -> io::Result<Json> {
        self.request(&obj([("op", Json::Str("stats".into()))]))
    }

    /// `metrics` — the live windowed-telemetry payload (rates, gauges,
    /// latency quantiles, per-alg breakdown).
    #[cfg(feature = "telemetry")]
    pub fn metrics(&self) -> io::Result<Json> {
        self.request(&obj([("op", Json::Str("metrics".into()))]))
    }

    /// `dump-flight` — ask the daemon to write a flight-recorder dump now.
    #[cfg(feature = "telemetry")]
    pub fn dump_flight(&self) -> io::Result<Json> {
        self.request(&obj([("op", Json::Str("dump-flight".into()))]))
    }

    /// `submit` with an already-built spec object.
    pub fn submit(&self, spec: Json) -> io::Result<Json> {
        self.request(&obj([("op", Json::Str("submit".into())), ("spec", spec)]))
    }

    /// `shutdown` (drain or cancel).
    pub fn shutdown(&self, drain: bool) -> io::Result<Json> {
        self.request(&obj([("op", Json::Str("shutdown".into())), ("drain", Json::Bool(drain))]))
    }
}
