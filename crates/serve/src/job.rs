//! The service's job model: what a named solve job is, its lifecycle
//! states, and the content key that makes results reusable across requests.
//!
//! A [`JobSpec`] names one solver cell — the same `(alg, n, k, seed,
//! machines, exact_ref, family)` coordinates `pobp sweep` / `pobp online`
//! iterate over — plus service-level fields the engine never sees: a
//! free-form `name`, an admission `priority`, and an optional per-job
//! solve `deadline_ms`. The daemon turns an admitted spec into exactly one
//! engine [`SolveTask`] and the task's terminal
//! [`TaskResult`](pobp_engine::TaskResult) into the job's terminal
//! [`JobStatus`].
//!
//! The [content key](JobSpec::content_key) hashes what the *solver* sees —
//! the generated instance bytes and the solving parameters, not the name or
//! priority — so two differently-named submissions of the same cell share
//! one result (`serve.cache.hits`), both within a daemon's lifetime and
//! across `kill -9` restarts (the registry journal persists results by
//! key; see `docs/serve.md`).

use pobp_engine::{instance_hash, Algo, SolveTask};
use pobp_instances::{zoo_instance, RandomWorkload, ZooFamily};

use crate::json::Json;

/// Hard cap on `n` accepted over the wire, so a hostile request cannot ask
/// the daemon to materialise an absurd instance.
pub const MAX_JOB_N: usize = 100_000;

/// One named solve job: a solver cell plus service-level metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Free-form client tag, echoed in every view of the job. Not
    /// interpreted and not part of the content key.
    pub name: String,
    /// The algorithm to run (any [`Algo`] except the test-only `panic`,
    /// which is admitted — the soak harness uses it to exercise failure
    /// paths — but never cached).
    pub alg: Algo,
    /// Instance size.
    pub n: usize,
    /// Preemption budget.
    pub k: u32,
    /// Workload seed.
    pub seed: u64,
    /// Machines (`1` = single machine).
    pub machines: usize,
    /// Whether the exact `OPT_∞` reference is used (see
    /// [`SolveTask::exact_ref`]).
    pub exact_ref: bool,
    /// Instance family: a zoo family (`docs/online.md`), or `None` for the
    /// standard random workload `pobp sweep` uses.
    pub family: Option<ZooFamily>,
    /// Admission priority: higher runs first; ties break FIFO by job id.
    pub priority: i64,
    /// Optional per-job wall-clock solve deadline, enforced cooperatively
    /// at the engine's stage-boundary yield points (with the daemon's
    /// `--degrade`, an overrun degrades to the polynomial fallback instead
    /// of failing).
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// A minimal spec for one solver cell (no name, default priority).
    pub fn cell(alg: Algo, n: usize, k: u32, seed: u64) -> Self {
        JobSpec {
            name: String::new(),
            alg,
            n,
            k,
            seed,
            machines: 1,
            exact_ref: false,
            family: None,
            priority: 0,
            deadline_ms: None,
        }
    }

    /// Materialises the job's instance (a pure function of the spec).
    pub fn instance(&self) -> pobp_core::JobSet {
        match self.family {
            Some(f) => zoo_instance(f, self.n, self.k, self.seed),
            None => RandomWorkload::standard(self.n).generate(self.seed),
        }
    }

    /// The engine task this spec runs.
    pub fn task(&self) -> SolveTask {
        SolveTask {
            instance: self.instance(),
            k: self.k,
            machines: self.machines,
            algo: self.alg,
            exact_ref: self.exact_ref,
            label: self.label(),
        }
    }

    /// The label echoed through the engine report.
    pub fn label(&self) -> String {
        let fam = self.family.map(|f| format!("{f} ")).unwrap_or_default();
        format!("{}n={} k={} seed={} {}", fam, self.n, self.k, self.seed, self.alg.name())
    }

    /// Content key of the *solve* this job asks for: a hash of the
    /// materialised instance and every solver-visible parameter. Jobs with
    /// equal keys have byte-identical certified results, so the daemon may
    /// serve one from the other (`serve.cache.hits`). Name, priority, and
    /// deadline are deliberately excluded.
    pub fn content_key(&self) -> u64 {
        let mut h = instance_hash(&self.instance());
        let mut mix = |w: u64| {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.k as u64);
        mix(self.machines as u64);
        mix(self.alg as u64);
        mix(self.exact_ref as u64);
        h
    }

    /// The spec as a protocol/journal JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("alg".into(), Json::Str(self.alg.name().into())),
            ("n".into(), Json::Num(self.n as f64)),
            ("k".into(), Json::Num(self.k as f64)),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("machines".into(), Json::Num(self.machines as f64)),
            ("exact_ref".into(), Json::Bool(self.exact_ref)),
            ("priority".into(), Json::Num(self.priority as f64)),
        ];
        if let Some(f) = self.family {
            pairs.push(("family".into(), Json::Str(f.to_string())));
        }
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms".into(), Json::Num(ms as f64)));
        }
        Json::Obj(pairs)
    }

    /// Parses and validates a spec from a protocol/journal JSON object.
    /// Every rejection names the offending field.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let name = v.get("name").and_then(Json::as_str).unwrap_or("").to_string();
        let alg_name = v.get("alg").and_then(Json::as_str).unwrap_or("reduction");
        let alg = Algo::parse(alg_name).ok_or_else(|| format!("unknown alg {alg_name:?}"))?;
        let n = v.get("n").and_then(Json::as_u64).unwrap_or(20) as usize;
        if n == 0 || n > MAX_JOB_N {
            return Err(format!("n must be in 1..={MAX_JOB_N} (got {n})"));
        }
        let k = match v.get("k").and_then(Json::as_u64).unwrap_or(1) {
            k if k <= u32::MAX as u64 => k as u32,
            k => return Err(format!("k out of range (got {k})")),
        };
        let seed = v.get("seed").and_then(Json::as_u64).unwrap_or(0);
        let machines = v.get("machines").and_then(Json::as_u64).unwrap_or(1) as usize;
        if machines == 0 || machines > 1024 {
            return Err(format!("machines must be in 1..=1024 (got {machines})"));
        }
        if alg.is_online() && machines > 1 {
            return Err("online algorithms are single-machine".into());
        }
        let exact_ref = v.get("exact_ref").and_then(Json::as_bool).unwrap_or(false);
        let family = match v.get("family").and_then(Json::as_str) {
            None => None,
            Some(s) => Some(
                ZooFamily::parse(s).ok_or_else(|| format!("unknown family {s:?}"))?,
            ),
        };
        let priority = v.get("priority").and_then(Json::as_i64).unwrap_or(0);
        let deadline_ms = match v.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(d) => match d.as_u64() {
                Some(ms) if ms >= 1 => Some(ms),
                _ => return Err("deadline_ms must be a positive integer".into()),
            },
        };
        Ok(JobSpec {
            name,
            alg,
            n,
            k,
            seed,
            machines,
            exact_ref,
            family,
            priority,
            deadline_ms,
        })
    }
}

/// Lifecycle state of a job in the registry
/// (`submit → queued → running → done/degraded/failed/cancelled`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting in the priority queue.
    Queued,
    /// Claimed by a worker; an engine is solving it.
    Running,
    /// Finished with a certified result (`TaskResult::Done`).
    Done,
    /// Finished with a certified polynomial-fallback result
    /// (`TaskResult::Degraded`).
    Degraded,
    /// Finished without a result: the engine reported `panicked`,
    /// `timed_out`, or `cert_failed` (the result JSON says which).
    Failed,
    /// Cancelled — while queued (never reached the engine) or mid-run
    /// (the per-job engine was cancel-shutdown).
    Cancelled,
}

impl JobStatus {
    /// The stable lowercase name used by the protocol.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Degraded => "degraded",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }

    /// Parses [`JobStatus::name`] back into a variant.
    pub fn parse(s: &str) -> Option<JobStatus> {
        match s {
            "queued" => Some(JobStatus::Queued),
            "running" => Some(JobStatus::Running),
            "done" => Some(JobStatus::Done),
            "degraded" => Some(JobStatus::Degraded),
            "failed" => Some(JobStatus::Failed),
            "cancelled" => Some(JobStatus::Cancelled),
            _ => None,
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }
}

/// Renders a content key as the fixed-width hex string used on the wire.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_json_roundtrips() {
        let mut spec = JobSpec::cell(Algo::Combined, 14, 2, 9);
        spec.name = "alpha".into();
        spec.priority = -3;
        spec.deadline_ms = Some(250);
        spec.family = Some(ZooFamily::parse("bursty").unwrap());
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn content_key_ignores_service_fields_but_not_solver_fields() {
        let a = JobSpec::cell(Algo::Reduction, 12, 1, 3);
        let mut b = a.clone();
        b.name = "other".into();
        b.priority = 99;
        b.deadline_ms = Some(1000);
        assert_eq!(a.content_key(), b.content_key());
        let mut c = a.clone();
        c.k = 2;
        assert_ne!(a.content_key(), c.content_key());
        let mut d = a.clone();
        d.alg = Algo::LsaCs;
        assert_ne!(a.content_key(), d.content_key());
    }

    #[test]
    fn spec_validation_names_the_field() {
        let bad = Json::parse(r#"{"alg":"nope"}"#).unwrap();
        assert!(JobSpec::from_json(&bad).unwrap_err().contains("alg"));
        let bad = Json::parse(r#"{"n":0}"#).unwrap();
        assert!(JobSpec::from_json(&bad).unwrap_err().contains('n'));
        let bad = Json::parse(r#"{"machines":0}"#).unwrap();
        assert!(JobSpec::from_json(&bad).unwrap_err().contains("machines"));
        let bad = Json::parse(r#"{"alg":"online-djn","machines":2}"#).unwrap();
        assert!(JobSpec::from_json(&bad).unwrap_err().contains("single-machine"));
        let bad = Json::parse(r#"{"deadline_ms":0}"#).unwrap();
        assert!(JobSpec::from_json(&bad).unwrap_err().contains("deadline_ms"));
    }

    #[test]
    fn status_roundtrips_and_terminality() {
        for s in [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Done,
            JobStatus::Degraded,
            JobStatus::Failed,
            JobStatus::Cancelled,
        ] {
            assert_eq!(JobStatus::parse(s.name()), Some(s));
            assert_eq!(s.is_terminal(), !matches!(s, JobStatus::Queued | JobStatus::Running));
        }
    }
}
