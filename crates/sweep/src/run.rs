//! The sweep runner: execute a [`SweepSpec`] chunk by chunk with
//! checkpointing, and resume an interrupted run.
//!
//! ## The resume contract
//!
//! `run_sweep` executes chunks strictly in plan order; within a chunk the
//! engine parallelizes across `--threads`, but the *IO stream* — rows in
//! grid order, one fsync per chunk, one manifest replace per chunk — is a
//! pure function of the spec. A run killed (or failed by an injected IO
//! fault) at any instant leaves the directory in one of three states, all
//! of which resume cleanly:
//!
//! 1. **between chunks** — manifest and shards agree; resume re-verifies
//!    recorded digests and continues with the first unrecorded chunk;
//! 2. **mid-shard** — the active shard holds a clean prefix or a torn
//!    tail; [`recover`] truncates to the last
//!    complete row and resume re-runs only the remaining tasks (rows are
//!    pure functions of their task, so the healed shard is byte-identical);
//! 3. **shard done, manifest not yet replaced** — the shard is complete
//!    and fsynced but unrecorded; resume recovers it whole, re-runs zero
//!    tasks, and records it.
//!
//! Completion (every chunk recorded) merges the shards — digests verified
//! again — into `merged.jsonl` via the same atomic-replace discipline.
//! The end-to-end invariant, property-tested in `tests/` and smoke-tested
//! in CI: *kill a sweep anywhere, resume it, and the merged bytes equal an
//! uninterrupted run's, for any `--threads`*. See `docs/sweeps.md`.

use std::path::{Path, PathBuf};

use pobp_engine::{run_batch, BatchReport, EngineConfig, EngineStats, IoGuard};
#[cfg(feature = "chaos")]
use pobp_engine::{Engine, FaultPlan};

use crate::manifest::{ChunkRecord, Manifest};
use crate::plan::{fnv1a, SweepSpec};
use crate::rows::format_row;
use crate::shard::{recover, shard_path, ShardState, ShardWriter};

/// How to run a sweep: the plan, the engine setup, and resume/limit knobs.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// The sharded grid.
    pub spec: SweepSpec,
    /// Engine configuration used for every chunk.
    pub engine: EngineConfig,
    /// Continue an interrupted sweep instead of starting a fresh one.
    /// Fresh runs refuse a directory that already holds a manifest;
    /// resumes require one, with a matching spec.
    pub resume: bool,
    /// Stop after completing this many chunks in this invocation (`None` =
    /// run to the end). The directory stays resumable.
    pub max_chunks: Option<usize>,
    /// Injected-fault plan for the engine *and* the io-* sites in the
    /// shard/manifest writers (chaos builds only).
    #[cfg(feature = "chaos")]
    pub chaos: Option<std::sync::Arc<FaultPlan>>,
}

/// What a `run_sweep` invocation accomplished.
#[derive(Clone, Debug, Default)]
pub struct SweepOutcome {
    /// Chunks in the full plan.
    pub chunks_total: usize,
    /// Chunks already recorded when this invocation started.
    pub chunks_skipped: usize,
    /// Chunks completed by this invocation.
    pub chunks_completed: usize,
    /// Rows computed and written by this invocation.
    pub rows_written: u64,
    /// Complete rows recovered from a previous life's partial shard.
    pub rows_recovered: u64,
    /// Torn-tail bytes truncated during recovery.
    pub torn_bytes: u64,
    /// `merged.jsonl`, present once every chunk is recorded.
    pub merged: Option<PathBuf>,
    /// Engine accounting summed over the chunks this invocation ran.
    pub stats: EngineStats,
}

/// Runs (or resumes) the sweep in `dir`. On error the directory is always
/// left resumable: shards at worst carry a torn tail, the manifest is
/// always a complete document.
pub fn run_sweep(dir: &Path, cfg: &SweepConfig) -> Result<SweepOutcome, String> {
    if cfg.spec.is_empty() {
        return Err("empty grid: every one of --n/--k/--seeds needs at least one value".into());
    }
    if cfg.spec.chunk_cells == 0 {
        return Err("--chunk-cells must be at least 1".into());
    }
    let loaded = Manifest::load(dir)?;
    // Chunking is a property of the checkpoint, not of the request: the
    // shards already on disk were cut at the manifest's chunk size, so a
    // resume adopts it and only the grid itself has to match.
    let mut spec = cfg.spec.clone();
    if cfg.resume {
        if let Some(m) = &loaded {
            if let Some(cells) = checkpoint_chunk_cells(&m.spec) {
                spec.chunk_cells = cells;
            }
        }
    }
    let spec_string = spec.spec_string();
    let spec_digest = spec.digest();
    let chunks = spec.chunks();

    let mut manifest = match loaded {
        Some(m) if !cfg.resume => {
            return Err(format!(
                "{} already holds a sweep checkpoint ({} of {} chunks done); \
                 pass --resume to continue it, or point --out at a fresh directory",
                dir.display(),
                m.done.len(),
                m.chunks_total,
            ));
        }
        None if cfg.resume => {
            return Err(format!(
                "--resume: no manifest in {} (nothing to resume)",
                dir.display()
            ));
        }
        Some(m) => {
            if m.spec != spec_string || m.spec_digest != spec_digest {
                return Err(format!(
                    "--resume: the grid does not match the checkpoint\n  checkpoint: {}\n  \
                     requested:  {spec_string}",
                    m.spec,
                ));
            }
            if m.chunks_total != chunks.len() {
                return Err(format!(
                    "--resume: manifest says {} chunks, plan says {} (corrupt manifest?)",
                    m.chunks_total,
                    chunks.len(),
                ));
            }
            m
        }
        None => {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("creating {}: {e}", dir.display()))?;
            let fresh = Manifest::fresh(spec_string.clone(), spec_digest, chunks.len());
            fresh
                .write(dir, &manifest_guard(cfg, spec_digest))
                .map_err(|e| format!("writing manifest: {e}"))?;
            fresh
        }
    };

    let m_guard = manifest_guard(cfg, spec_digest);
    let mut out = SweepOutcome { chunks_total: chunks.len(), ..SweepOutcome::default() };
    #[cfg(feature = "telemetry")]
    let run_started = std::time::Instant::now();

    for chunk in &chunks {
        let tasks = chunk.tasks();
        let key = chunk.key_of(&tasks);
        let path = shard_path(dir, chunk.index);

        if let Some(rec) = manifest.record(chunk.index) {
            if rec.key != key {
                return Err(format!(
                    "--resume: chunk {} key mismatch (manifest {:#x}, plan {:#x}) — \
                     the checkpoint does not belong to this grid",
                    chunk.index, rec.key, key,
                ));
            }
            verify_shard(&path, rec)?;
            out.chunks_skipped += 1;
            continue;
        }

        if out.chunks_completed >= cfg.max_chunks.unwrap_or(usize::MAX) {
            continue; // budget for this invocation exhausted; stay resumable
        }

        // Heal whatever a previous life left: a clean prefix, a torn tail,
        // or a complete-but-unrecorded shard.
        let state = recover(&path).map_err(|e| format!("recovering {}: {e}", path.display()))?;
        let total = chunk.rows() as u64;
        if state.rows > total {
            return Err(format!(
                "{}: {} rows on disk but the chunk has only {total} — \
                 not this sweep's shard",
                path.display(),
                state.rows,
            ));
        }
        out.rows_recovered += state.rows;
        out.torn_bytes += state.torn_bytes;

        let coords = chunk.coords();
        let remainder = &tasks[state.rows as usize..];
        let mut writer = ShardWriter::open(dir, chunk.index, &state, shard_guard(cfg, key))
            .map_err(|e| format!("opening {}: {e}", path.display()))?;
        if !remainder.is_empty() {
            let batch = run_chunk(cfg, remainder);
            add_stats(&mut out.stats, &batch.stats);
            for (&(n, k, seed), report) in
                coords[state.rows as usize..].iter().zip(&batch.reports)
            {
                let row = format_row(n, k, seed, chunk.algo, chunk.machines, report);
                writer
                    .append_row(&row)
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                out.rows_written += 1;
            }
        }
        let done: ShardState =
            writer.finish().map_err(|e| format!("fsyncing {}: {e}", path.display()))?;
        debug_assert_eq!(done.rows, total);

        manifest.done.push(ChunkRecord {
            index: chunk.index,
            key,
            rows: done.rows,
            bytes: done.bytes,
            digest: done.digest,
        });
        manifest
            .write(dir, &m_guard)
            .map_err(|e| format!("writing manifest: {e}"))?;
        out.chunks_completed += 1;
        pobp_core::obs_count!("sweep.chunks_completed");
        #[cfg(feature = "telemetry")]
        write_heartbeat(dir, run_started, manifest.done.len(), chunks.len(), &out);
    }

    if manifest.done.len() == chunks.len() {
        out.merged = Some(merge(dir, &manifest, &m_guard)?);
    }
    Ok(out)
}

/// Overwrites `heartbeat.json` in the sweep directory with one progress
/// line: elapsed, chunks done/total, rows written this invocation, rows/s,
/// and a chunk-based ETA. Pure telemetry: written outside the IoGuard, not
/// digest-verified, ignored by resume/merge — crash-safety and the
/// byte-identity of shards/manifest/`merged.jsonl` do not depend on it,
/// and write failures are deliberately swallowed.
#[cfg(feature = "telemetry")]
fn write_heartbeat(
    dir: &Path,
    started: std::time::Instant,
    chunks_done: usize,
    chunks_total: usize,
    out: &SweepOutcome,
) {
    use pobp_core::json::{obj, Json};
    let elapsed = started.elapsed().as_secs_f64();
    let rows_per_s = if elapsed > 0.0 { out.rows_written as f64 / elapsed } else { 0.0 };
    let remaining = chunks_total.saturating_sub(chunks_done);
    let eta_s = if out.chunks_completed > 0 {
        Json::Num(elapsed / out.chunks_completed as f64 * remaining as f64)
    } else {
        Json::Null
    };
    let line = obj([
        ("elapsed_ms", Json::Num((elapsed * 1000.0).round())),
        ("chunks_done", Json::Num(chunks_done as f64)),
        ("chunks_total", Json::Num(chunks_total as f64)),
        ("rows_written", Json::Num(out.rows_written as f64)),
        ("rows_per_s", Json::Num(rows_per_s)),
        ("eta_s", eta_s),
    ]);
    let _ = std::fs::write(dir.join("heartbeat.json"), format!("{line}\n"));
}

/// Re-checks a recorded chunk's shard against its manifest record — the
/// digest verification `--resume` promises before skipping a chunk.
fn verify_shard(path: &Path, rec: &ChunkRecord) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    if bytes.len() as u64 != rec.bytes || fnv1a(&bytes) != rec.digest {
        return Err(format!(
            "{}: shard does not match its manifest record ({} bytes vs {} recorded) — \
             the checkpoint directory was modified; delete it and re-run",
            path.display(),
            bytes.len(),
            rec.bytes,
        ));
    }
    Ok(())
}

/// Concatenates the shards, in chunk order and digest-verified, into
/// `merged.jsonl` (atomic replace). Byte-identical to what a streaming
/// sweep of the same spec prints.
fn merge(dir: &Path, manifest: &Manifest, guard: &IoGuard) -> Result<PathBuf, String> {
    let mut merged = Vec::new();
    for index in 0..manifest.chunks_total {
        let rec = manifest
            .record(index)
            .ok_or_else(|| format!("merge: chunk {index} missing from the manifest"))?;
        let path = shard_path(dir, index);
        verify_shard(&path, rec)?;
        let bytes =
            std::fs::read(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        merged.extend_from_slice(&bytes);
    }
    let out = dir.join("merged.jsonl");
    guard
        .atomic_replace(&out, &merged)
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    Ok(out)
}

/// Runs one chunk's remaining tasks through the engine.
fn run_chunk(cfg: &SweepConfig, tasks: &[pobp_engine::SolveTask]) -> BatchReport {
    #[cfg(feature = "chaos")]
    if let Some(plan) = &cfg.chaos {
        return Engine::with_chaos(cfg.engine.clone(), FaultPlan::clone(plan)).run_batch(tasks);
    }
    run_batch(tasks, cfg.engine.clone())
}

/// The guard under the checkpoint manifest (and the final merge), keyed by
/// the spec digest.
fn manifest_guard(cfg: &SweepConfig, spec_digest: u64) -> IoGuard {
    guard_for(cfg, spec_digest ^ 0x6d61_6e69_6665_7374)
}

/// The guard under one chunk's shard writer, keyed by the chunk key.
fn shard_guard(cfg: &SweepConfig, chunk_key: u64) -> IoGuard {
    guard_for(cfg, chunk_key)
}

fn guard_for(cfg: &SweepConfig, key: u64) -> IoGuard {
    #[cfg(feature = "chaos")]
    if let Some(plan) = &cfg.chaos {
        return IoGuard::armed(std::sync::Arc::clone(plan), key);
    }
    let _ = (cfg, key);
    IoGuard::inert()
}

/// The `chunk_cells=N` tail of a recorded spec string (`SweepSpec::spec_string`).
fn checkpoint_chunk_cells(spec: &str) -> Option<usize> {
    spec.rsplit(';').next()?.strip_prefix("chunk_cells=")?.parse().ok()
}

/// Field-wise sum of engine accounting across chunks.
fn add_stats(acc: &mut EngineStats, s: &EngineStats) {
    acc.tasks += s.tasks;
    acc.run += s.run;
    acc.cached += s.cached;
    acc.degraded += s.degraded;
    acc.cert_failed += s.cert_failed;
    acc.panicked += s.panicked;
    acc.timed_out += s.timed_out;
    acc.cancelled += s.cancelled;
    acc.retried += s.retried;
    acc.ref_cache_hits += s.ref_cache_hits;
    acc.steal_attempts += s.steal_attempts;
    acc.steal_hits += s.steal_hits;
}
