//! The sweep row format: one JSON line per grid cell.
//!
//! One function, [`format_row`], produces the line for a `(n, k, seed)`
//! cell from its [`TaskReport`] — used by the `pobp sweep` stdout path and
//! the shard writer alike, so a sharded sweep's merged output is
//! byte-identical to the streaming one.
//!
//! Rows are a **pure function of the request**: no durations, no cache
//! flags, no thread ids. That is the determinism contract that makes
//! `--threads 1` and `--threads 4` byte-identical, and — because a resumed
//! sweep recomputes exactly the missing cells — what makes a `--resume`
//! after `kill -9` converge to the uninterrupted bytes (docs/sweeps.md).
//! (`attempts` qualifies: sweep grids contain no duplicate-content tasks,
//! so the result cache never answers one cell with another's attempt
//! count, and chaos retries are content-keyed.)

use pobp_engine::{Algo, SolveOutput, TaskReport, TaskResult};

/// Formats the JSON line of one sweep cell.
pub fn format_row(
    n: usize,
    k: u32,
    seed: u64,
    algo: Algo,
    machines: usize,
    report: &TaskReport,
) -> String {
    let mut line = format!(
        "{{\"n\":{n},\"k\":{k},\"seed\":{seed},\"alg\":\"{}\",\"machines\":{machines},\
         \"status\":\"{}\",\"attempts\":{}",
        algo.name(),
        report.result.status(),
        report.attempts,
    );
    match &report.result {
        TaskResult::Done(out) => push_output_fields(&mut line, out),
        TaskResult::Degraded { fallback, cause, output } => {
            line.push_str(&format!(
                ",\"fallback\":\"{}\",\"cause\":\"{}\"",
                fallback.name(),
                cause.name(),
            ));
            push_output_fields(&mut line, output);
        }
        TaskResult::CertFailed { stage, reason } => {
            line.push_str(&format!(
                ",\"stage\":\"{}\",\"reason\":\"{}\"",
                stage.name(),
                json_escape(reason),
            ));
        }
        TaskResult::Panicked { message } => {
            line.push_str(&format!(",\"message\":\"{}\"", json_escape(message)));
        }
        TaskResult::TimedOut | TaskResult::Cancelled => {}
    }
    line.push('}');
    line
}

/// Appends the certified output fields shared by `ok` and `degraded` rows.
pub fn push_output_fields(line: &mut String, out: &SolveOutput) {
    line.push_str(&format!(
        ",\"value\":{},\"ref_value\":{},\"scheduled\":{},\"preemptions\":{}",
        out.alg_value, out.ref_value, out.scheduled, out.preemptions,
    ));
    if let Some(p) = out.price() {
        line.push_str(&format!(",\"price\":{p}"));
    }
}

/// Minimal JSON string escaping for panic messages and cert reasons.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
