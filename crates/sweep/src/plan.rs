//! The sweep planner: an `(n, k, seed)` grid sharded into content-addressed
//! chunks.
//!
//! A chunk is a run of whole `(n, seed)` **cells** (each cell expands to
//! its full `k` row), taken in the engine's canonical grid order — `ns ×
//! seeds` row-major, `k` innermost within a cell. Cutting on cell
//! boundaries keeps every `k` row inside one chunk, so the engine's
//! reference-layer cache (keyed by instance, shared across a cell's `k`s)
//! amortizes exactly as it does in a streaming sweep, and a chunk's rows
//! are a pure function of the chunk alone.
//!
//! Content addressing: each chunk's [`key`](ChunkPlan::key) folds the
//! [`task_key`] of every task it contains — the same
//! content keys the cache and the chaos layer use — and the whole spec has
//! a canonical [`spec_string`](SweepSpec::spec_string) + digest. The
//! checkpoint manifest records both, which is how `--resume` detects a
//! changed grid (hard error) or a changed chunk (recomputed) instead of
//! silently merging rows from two different sweeps.

use pobp_engine::{splitmix64, task_key, Algo, SolveTask};
use pobp_instances::RandomWorkload;

/// A sharded sweep specification: the grid axes plus the chunk size.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// Instance sizes.
    pub ns: Vec<usize>,
    /// Preemption budgets (the `k` row of every cell).
    pub ks: Vec<u32>,
    /// Workload seeds.
    pub seeds: Vec<u64>,
    /// The algorithm every task runs.
    pub algo: Algo,
    /// Machines per task.
    pub machines: usize,
    /// Whether tasks use the exact `OPT_∞` reference.
    pub exact_ref: bool,
    /// `(n, seed)` cells per chunk (≥ 1; the last chunk may be smaller).
    pub chunk_cells: usize,
}

impl SweepSpec {
    /// Total `(n, seed)` cells in the grid.
    pub fn cells(&self) -> usize {
        self.ns.len() * self.seeds.len()
    }

    /// Total rows (tasks) the grid expands to.
    pub fn rows(&self) -> usize {
        self.cells() * self.ks.len()
    }

    /// Whether the grid is empty along any axis.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// The canonical one-line description of the spec. Everything that
    /// changes the output bytes or the chunking is in here; the manifest
    /// stores it (plus its digest) and `--resume` refuses a mismatch.
    pub fn spec_string(&self) -> String {
        let list = |xs: &[u64]| {
            xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(",")
        };
        format!(
            "v1;ns={};ks={};seeds={};alg={};machines={};exact_ref={};chunk_cells={}",
            list(&self.ns.iter().map(|&n| n as u64).collect::<Vec<_>>()),
            list(&self.ks.iter().map(|&k| k as u64).collect::<Vec<_>>()),
            list(&self.seeds),
            self.algo.name(),
            self.machines,
            self.exact_ref,
            self.chunk_cells,
        )
    }

    /// FNV-1a digest of [`spec_string`](SweepSpec::spec_string).
    pub fn digest(&self) -> u64 {
        fnv1a(self.spec_string().as_bytes())
    }

    /// Splits the grid into chunks of `chunk_cells` whole cells, in grid
    /// order. Panics on an empty grid or `chunk_cells == 0` (the CLI
    /// validates both first).
    pub fn chunks(&self) -> Vec<ChunkPlan> {
        assert!(!self.is_empty(), "empty sweep grid");
        assert!(self.chunk_cells > 0, "chunk_cells must be >= 1");
        let mut cells = Vec::with_capacity(self.cells());
        for &n in &self.ns {
            for &seed in &self.seeds {
                cells.push((n, seed));
            }
        }
        cells
            .chunks(self.chunk_cells)
            .enumerate()
            .map(|(index, cells)| ChunkPlan {
                index,
                cells: cells.to_vec(),
                ks: self.ks.clone(),
                algo: self.algo,
                machines: self.machines,
                exact_ref: self.exact_ref,
            })
            .collect()
    }
}

/// One chunk: a run of whole `(n, seed)` cells and the shared solving
/// parameters. Expands to `cells × ks` tasks, in grid order.
#[derive(Clone, Debug)]
pub struct ChunkPlan {
    /// Position in the chunk sequence (shard file names use it).
    pub index: usize,
    /// The `(n, seed)` cells, in grid order.
    pub cells: Vec<(usize, u64)>,
    /// The `k` row of every cell.
    pub ks: Vec<u32>,
    /// The algorithm every task runs.
    pub algo: Algo,
    /// Machines per task.
    pub machines: usize,
    /// Whether tasks use the exact `OPT_∞` reference.
    pub exact_ref: bool,
}

impl ChunkPlan {
    /// Rows this chunk emits.
    pub fn rows(&self) -> usize {
        self.cells.len() * self.ks.len()
    }

    /// The `(n, k, seed)` coordinates of every row, parallel to
    /// [`tasks`](ChunkPlan::tasks).
    pub fn coords(&self) -> Vec<(usize, u32, u64)> {
        let mut out = Vec::with_capacity(self.rows());
        for &(n, seed) in &self.cells {
            for &k in &self.ks {
                out.push((n, k, seed));
            }
        }
        out
    }

    /// Expands the chunk into solver tasks (the standard random workload;
    /// each cell's instance generated once and shared across its `k` row —
    /// the same expansion as [`GridSpec::tasks`](pobp_engine::GridSpec)).
    pub fn tasks(&self) -> Vec<SolveTask> {
        let mut out = Vec::with_capacity(self.rows());
        for &(n, seed) in &self.cells {
            let instance = RandomWorkload::standard(n).generate(seed);
            for &k in &self.ks {
                out.push(SolveTask {
                    instance: instance.clone(),
                    k,
                    machines: self.machines,
                    algo: self.algo,
                    exact_ref: self.exact_ref,
                    label: format!("n={n} k={k} seed={seed}"),
                });
            }
        }
        out
    }

    /// The chunk's content key: a fold of every task's content key (the
    /// same [`task_key`] the cache and chaos layers use), mixed with the
    /// chunk's position. Recorded in the manifest; a resume recomputes it
    /// and recomputes any chunk whose key changed.
    pub fn key(&self) -> u64 {
        self.key_of(&self.tasks())
    }

    /// [`key`](ChunkPlan::key) over an already-expanded task list (the
    /// runner expands once and reuses it).
    pub fn key_of(&self, tasks: &[SolveTask]) -> u64 {
        let mut h = splitmix64(self.index as u64 ^ 0x6368_756e_6b30_3031);
        for t in tasks {
            h = splitmix64(h ^ task_key(t));
        }
        h
    }
}

/// FNV-1a over bytes — the digest used for spec strings and shard files.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(0xcbf2_9ce4_8422_2325, bytes)
}

/// Extends a running FNV-1a digest (`fnv1a(b) == fnv1a_extend(OFFSET, b)`),
/// so the shard writer can fold line after line without buffering the file.
pub fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec {
            ns: vec![6, 8],
            ks: vec![0, 1, 2],
            seeds: vec![0, 1, 2],
            algo: Algo::Reduction,
            machines: 1,
            exact_ref: false,
            chunk_cells: 4,
        }
    }

    #[test]
    fn chunks_cover_the_grid_in_order_without_splitting_cells() {
        let s = spec();
        let chunks = s.chunks();
        assert_eq!(chunks.len(), 2, "6 cells at 4 per chunk");
        assert_eq!(chunks[0].cells.len(), 4);
        assert_eq!(chunks[1].cells.len(), 2);
        assert_eq!(chunks.iter().map(ChunkPlan::rows).sum::<usize>(), s.rows());
        // Grid order: n outer, seed inner.
        assert_eq!(chunks[0].cells, vec![(6, 0), (6, 1), (6, 2), (8, 0)]);
        assert_eq!(chunks[1].cells, vec![(8, 1), (8, 2)]);
        // Coords are parallel to tasks, k innermost.
        let coords = chunks[1].coords();
        assert_eq!(coords[0], (8, 0, 1));
        assert_eq!(coords[1], (8, 1, 1));
        assert_eq!(coords.len(), chunks[1].tasks().len());
    }

    #[test]
    fn chunk_keys_are_content_addressed() {
        let s = spec();
        let a = s.chunks();
        let b = s.chunks();
        assert_eq!(a[0].key(), b[0].key(), "same plan, same keys");
        assert_ne!(a[0].key(), a[1].key(), "different chunks, different keys");
        // Changing the grid changes the keys of the chunks it reaches.
        let mut s2 = spec();
        s2.ks = vec![0, 1, 4];
        assert_ne!(s2.chunks()[0].key(), a[0].key());
    }

    #[test]
    fn spec_string_pins_every_output_affecting_field() {
        let s = spec();
        let d = s.digest();
        for (mutate, _why) in [
            (Box::new(|x: &mut SweepSpec| x.ns.push(10)) as Box<dyn Fn(&mut SweepSpec)>, "ns"),
            (Box::new(|x: &mut SweepSpec| x.ks.pop().map(|_| ()).unwrap_or(())), "ks"),
            (Box::new(|x: &mut SweepSpec| x.seeds[0] = 9), "seeds"),
            (Box::new(|x: &mut SweepSpec| x.algo = Algo::K0), "algo"),
            (Box::new(|x: &mut SweepSpec| x.machines = 2), "machines"),
            (Box::new(|x: &mut SweepSpec| x.exact_ref = true), "exact_ref"),
            (Box::new(|x: &mut SweepSpec| x.chunk_cells = 1), "chunk_cells"),
        ] {
            let mut m = spec();
            mutate(&mut m);
            assert_ne!(m.digest(), d, "digest must move when the spec does");
        }
    }
}
