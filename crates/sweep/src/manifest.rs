//! The checkpoint manifest: `manifest.json` in the sweep output directory.
//!
//! The manifest is the sweep's single source of durable truth: the spec
//! (canonical string + digest) and, per **completed** chunk, the chunk's
//! content key and the shard file's row count, byte length, and FNV-1a
//! digest. It is rewritten after every chunk completion with the same
//! tmp → fsync → rename discipline as the serve registry's snapshots
//! (through [`IoGuard::atomic_replace`]), so at every instant the file on
//! disk is either the previous manifest or the next one — never a torn
//! in-between. A chunk is *recorded only after* its shard file is fsynced,
//! which gives the resume invariant: every chunk the manifest lists is
//! fully on disk.
//!
//! 64-bit keys and digests are stored as hex **strings** (`"0x…"`), not
//! JSON numbers — the workspace's JSON numbers are `f64`, which holds only
//! 53 exact bits. See `docs/sweeps.md` for the schema.

use std::io;
use std::path::{Path, PathBuf};

use pobp_core::json::{obj, Json};
use pobp_engine::IoGuard;

/// Schema version written by this build.
pub const MANIFEST_VERSION: u64 = 1;

/// The manifest file name inside the sweep directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Accounting for one completed chunk.
#[derive(Clone, Debug, PartialEq)]
pub struct ChunkRecord {
    /// The chunk's position in the plan.
    pub index: usize,
    /// The chunk's content key ([`ChunkPlan::key`](crate::plan::ChunkPlan)).
    pub key: u64,
    /// Complete rows in the shard file.
    pub rows: u64,
    /// Shard file length in bytes.
    pub bytes: u64,
    /// FNV-1a digest of the shard file's bytes.
    pub digest: u64,
}

/// The parsed (or to-be-written) checkpoint manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Schema version.
    pub version: u64,
    /// The canonical spec string ([`SweepSpec::spec_string`](crate::plan::SweepSpec)).
    pub spec: String,
    /// FNV-1a digest of `spec`.
    pub spec_digest: u64,
    /// Chunks in the full plan.
    pub chunks_total: usize,
    /// Completed chunks, in completion (= plan) order.
    pub done: Vec<ChunkRecord>,
}

impl Manifest {
    /// A fresh manifest for a new sweep.
    pub fn fresh(spec: String, spec_digest: u64, chunks_total: usize) -> Self {
        Manifest { version: MANIFEST_VERSION, spec, spec_digest, chunks_total, done: Vec::new() }
    }

    /// The completed chunk record for `index`, if any.
    pub fn record(&self, index: usize) -> Option<&ChunkRecord> {
        self.done.iter().find(|r| r.index == index)
    }

    /// Serializes to the canonical JSON document (single line + newline).
    pub fn to_json(&self) -> String {
        let chunks: Vec<Json> = self
            .done
            .iter()
            .map(|r| {
                obj([
                    ("index", Json::Num(r.index as f64)),
                    ("key", Json::Str(format!("{:#018x}", r.key))),
                    ("rows", Json::Num(r.rows as f64)),
                    ("bytes", Json::Num(r.bytes as f64)),
                    ("digest", Json::Str(format!("{:#018x}", r.digest))),
                ])
            })
            .collect();
        let doc = obj([
            ("version", Json::Num(self.version as f64)),
            ("spec", Json::Str(self.spec.clone())),
            ("spec_digest", Json::Str(format!("{:#018x}", self.spec_digest))),
            ("chunks_total", Json::Num(self.chunks_total as f64)),
            ("done", Json::Arr(chunks)),
        ]);
        format!("{doc}\n")
    }

    /// Parses a manifest document. Structured errors, never a panic — the
    /// input may be any bytes (though the atomic-replace discipline means a
    /// torn manifest indicates something worse than a crash).
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let doc = Json::parse(text.trim_end()).map_err(|e| e.to_string())?;
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("manifest: missing version")?;
        if version != MANIFEST_VERSION {
            return Err(format!(
                "manifest: version {version} (this build reads {MANIFEST_VERSION})"
            ));
        }
        let spec = doc
            .get("spec")
            .and_then(Json::as_str)
            .ok_or("manifest: missing spec")?
            .to_string();
        let spec_digest = hex_u64(doc.get("spec_digest"), "spec_digest")?;
        let chunks_total = doc
            .get("chunks_total")
            .and_then(Json::as_u64)
            .ok_or("manifest: missing chunks_total")? as usize;
        let mut done = Vec::new();
        for (i, c) in doc
            .get("done")
            .and_then(Json::as_arr)
            .ok_or("manifest: missing done")?
            .iter()
            .enumerate()
        {
            let field = |name: &str| {
                c.get(name)
                    .and_then(Json::as_u64)
                    .ok_or(format!("manifest: done[{i}]: missing {name}"))
            };
            done.push(ChunkRecord {
                index: field("index")? as usize,
                key: hex_u64(c.get("key"), "key")?,
                rows: field("rows")?,
                bytes: field("bytes")?,
                digest: hex_u64(c.get("digest"), "digest")?,
            });
        }
        Ok(Manifest { version, spec, spec_digest, chunks_total, done })
    }

    /// The manifest path inside `dir`.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// Loads and parses `dir`'s manifest; `Ok(None)` when the file does
    /// not exist, `Err` on unreadable or unparseable contents.
    pub fn load(dir: &Path) -> Result<Option<Manifest>, String> {
        let path = Manifest::path(dir);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("reading {}: {e}", path.display())),
        };
        Manifest::parse(&text)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Atomically replaces `dir`'s manifest with this one (tmp → fsync →
    /// rename, through the fault-injectable `guard`).
    pub fn write(&self, dir: &Path, guard: &IoGuard) -> io::Result<()> {
        guard.atomic_replace(&Manifest::path(dir), self.to_json().as_bytes())
    }
}

/// Decodes a `"0x…"` hex-string field into a `u64`.
fn hex_u64(v: Option<&Json>, name: &str) -> Result<u64, String> {
    let s = v
        .and_then(Json::as_str)
        .ok_or(format!("manifest: missing {name}"))?;
    let digits = s
        .strip_prefix("0x")
        .ok_or(format!("manifest: {name} is not 0x-prefixed hex (got {s:?})"))?;
    u64::from_str_radix(digits, 16)
        .map_err(|e| format!("manifest: {name}: {e} (got {s:?})"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            version: MANIFEST_VERSION,
            spec: "v1;ns=6;ks=0,1;seeds=0;alg=reduction;machines=1;exact_ref=false;chunk_cells=2"
                .into(),
            spec_digest: 0xdead_beef_0123_4567,
            chunks_total: 3,
            done: vec![
                ChunkRecord {
                    index: 0,
                    key: u64::MAX, // > 2^53: must survive the round-trip
                    rows: 12,
                    bytes: 1034,
                    digest: 0x8000_0000_0000_0001,
                },
                ChunkRecord { index: 1, key: 7, rows: 12, bytes: 998, digest: 42 },
            ],
        }
    }

    #[test]
    fn json_round_trips_including_full_width_keys() {
        let m = sample();
        let parsed = Manifest::parse(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.record(0).unwrap().key, u64::MAX);
        assert!(parsed.record(2).is_none());
    }

    #[test]
    fn malformed_manifests_error_loudly() {
        assert!(Manifest::parse("").is_err());
        assert!(Manifest::parse("{}").unwrap_err().contains("version"));
        let future = sample().to_json().replace("\"version\":1", "\"version\":999");
        assert!(Manifest::parse(&future).unwrap_err().contains("999"));
        let bad_key = sample().to_json().replace("0xffffffffffffffff", "ffff");
        assert!(Manifest::parse(&bad_key).unwrap_err().contains("0x-prefixed"));
    }

    #[test]
    fn write_then_load_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("pobp-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), None);
        let m = sample();
        m.write(&dir, &IoGuard::inert()).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(m.clone()));
        // Overwrites atomically: the tmp never shadows the real file.
        let mut m2 = m;
        m2.done.pop();
        m2.write(&dir, &IoGuard::inert()).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap().unwrap().done.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
