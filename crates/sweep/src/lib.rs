//! # pobp-sweep — crash-safe, sharded, resumable grid sweeps
//!
//! `pobp sweep` streaming to stdout loses every completed row when the
//! process dies — fatal at mega-sweep scale, where interruption is the
//! common case. This crate is the durable sweep pipeline behind
//! `pobp sweep --out DIR` (see `docs/sweeps.md`):
//!
//! * [`plan`] — shards an `(n, k, seed)` grid into content-addressed
//!   chunks of whole `(n, seed)` cells (chunk keys fold the engine's
//!   [`task_key`](pobp_engine::task_key)s, spec strings are canonical and
//!   digested);
//! * [`rows`] — the one row formatter shared with the stdout path, so
//!   sharded and streaming sweeps emit byte-identical rows;
//! * [`shard`] — per-chunk `shard-NNNNN.jsonl` writers with running
//!   digests, plus the torn-tail recovery rule;
//! * [`manifest`] — the `manifest.json` checkpoint, rewritten atomically
//!   (tmp → fsync → rename) after every chunk;
//! * [`run`] — the orchestrator: fresh/resume validation, chunk-by-chunk
//!   execution, digest-verified skipping, tail healing, and the final
//!   digest-verified merge into `merged.jsonl`.
//!
//! Every durable write goes through the engine's fault-injectable
//! [`IoGuard`](pobp_engine::IoGuard); with the `chaos` feature a seeded
//! plan can fail any write, fsync, or rename deterministically, and the
//! property tests in `tests/` drive kill-at-every-point → resume →
//! byte-identical-merge, across engine thread counts.
//!
//! With the `obs` feature the runner emits the `sweep.*` counters
//! (`sweep.rows_written`, `sweep.chunks_completed`) alongside the
//! `chaos.io.*` injection counters; see `docs/observability.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manifest;
pub mod plan;
pub mod rows;
pub mod run;
pub mod shard;

pub use manifest::{ChunkRecord, Manifest};
pub use plan::{ChunkPlan, SweepSpec};
pub use rows::format_row;
pub use run::{run_sweep, SweepConfig, SweepOutcome};
pub use shard::{recover, ShardState, ShardWriter};
