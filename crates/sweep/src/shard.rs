//! Shard files: one append-only `shard-NNNNN.jsonl` per chunk.
//!
//! A shard holds its chunk's rows in grid order, one JSON line each,
//! written through the fault-injectable [`IoGuard`] and fsynced once at
//! chunk end (before the manifest records the chunk). The writer keeps a
//! running FNV-1a digest over everything it has written, so completion
//! hands the manifest exact `(rows, bytes, digest)` accounting without
//! re-reading the file.
//!
//! Recovery ([`recover`]) is the torn-tail rule the serve journal uses:
//! keep the longest prefix ending in a newline, drop the rest. A row is
//! *complete* iff its newline reached the file — every io-* fault and
//! every `kill -9` leaves either a clean prefix or a newline-less tail,
//! both of which recover to a row boundary. The resume runner then re-runs
//! only the tasks past that boundary; rows are pure functions of their
//! task, so the healed shard is byte-identical to an uninterrupted one.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use pobp_engine::IoGuard;

use crate::plan::{fnv1a, fnv1a_extend};

/// The shard file name for chunk `index`.
pub fn shard_name(index: usize) -> String {
    format!("shard-{index:05}.jsonl")
}

/// The shard path for chunk `index` inside `dir`.
pub fn shard_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(shard_name(index))
}

/// What [`recover`] found on disk for a shard.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardState {
    /// Complete rows on disk (newline-terminated lines).
    pub rows: u64,
    /// Byte length of the complete prefix.
    pub bytes: u64,
    /// FNV-1a digest of the complete prefix.
    pub digest: u64,
    /// Bytes dropped from a torn tail (0 for a clean file).
    pub torn_bytes: u64,
}

/// Reads a shard file and truncates it to its longest complete-line
/// prefix, returning the prefix's accounting. A missing file is an empty
/// shard (nothing to truncate).
pub fn recover(path: &Path) -> io::Result<ShardState> {
    let mut file = match File::options().read(true).write(true).open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(ShardState { rows: 0, bytes: 0, digest: fnv1a(b""), torn_bytes: 0 })
        }
        Err(e) => return Err(e),
    };
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;
    let keep = buf.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
    let torn = (buf.len() - keep) as u64;
    if torn > 0 {
        file.set_len(keep as u64)?;
        file.seek(SeekFrom::End(0))?;
        file.sync_all()?;
    }
    let prefix = &buf[..keep];
    Ok(ShardState {
        rows: prefix.iter().filter(|&&b| b == b'\n').count() as u64,
        bytes: keep as u64,
        digest: fnv1a(prefix),
        torn_bytes: torn,
    })
}

/// The append-side of one shard: a file handle, the guard, and running
/// `(rows, bytes, digest)` accounting.
#[derive(Debug)]
pub struct ShardWriter {
    file: File,
    guard: IoGuard,
    rows: u64,
    bytes: u64,
    digest: u64,
}

impl ShardWriter {
    /// Opens chunk `index`'s shard for appending, continuing from a
    /// recovered `state` (use a zeroed/empty state for a fresh shard; pass
    /// what [`recover`] returned to continue a partial one).
    pub fn open(dir: &Path, index: usize, state: &ShardState, guard: IoGuard) -> io::Result<Self> {
        let file = guard.open_append(&shard_path(dir, index))?;
        Ok(ShardWriter {
            file,
            guard,
            rows: state.rows,
            bytes: state.bytes,
            digest: state.digest,
        })
    }

    /// Appends one row (no trailing newline in `row`; the writer adds it)
    /// and folds it into the running digest. On error the file may hold a
    /// torn tail — the caller must abandon the writer and let a future
    /// [`recover`] heal it.
    pub fn append_row(&mut self, row: &str) -> io::Result<()> {
        self.guard.append_line(&mut self.file, row.as_bytes())?;
        self.digest = fnv1a_extend(self.digest, row.as_bytes());
        self.digest = fnv1a_extend(self.digest, b"\n");
        self.rows += 1;
        self.bytes += row.len() as u64 + 1;
        pobp_core::obs_count!("sweep.rows_written");
        Ok(())
    }

    /// Fsyncs the shard and returns its final accounting — call once, at
    /// chunk end, *before* recording the chunk in the manifest.
    pub fn finish(mut self) -> io::Result<ShardState> {
        self.guard.fsync(&mut self.file)?;
        Ok(ShardState { rows: self.rows, bytes: self.bytes, digest: self.digest, torn_bytes: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pobp-shard-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn write_finish_accounting_matches_recover() {
        let dir = tmpdir("acct");
        let empty = ShardState { rows: 0, bytes: 0, digest: fnv1a(b""), torn_bytes: 0 };
        let mut w = ShardWriter::open(&dir, 3, &empty, IoGuard::inert()).unwrap();
        w.append_row("{\"n\":6,\"k\":0}").unwrap();
        w.append_row("{\"n\":6,\"k\":1}").unwrap();
        let done = w.finish().unwrap();
        assert_eq!(done.rows, 2);
        let on_disk = recover(&shard_path(&dir, 3)).unwrap();
        assert_eq!(on_disk, done, "running digest == recomputed digest");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_drops_a_torn_tail_and_resume_append_matches_clean() {
        let dir = tmpdir("torn");
        let p = shard_path(&dir, 0);
        // Clean reference: three rows in one life.
        let empty = ShardState { rows: 0, bytes: 0, digest: fnv1a(b""), torn_bytes: 0 };
        let rows = ["{\"a\":1}", "{\"b\":22}", "{\"c\":333}"];
        let clean_dir = tmpdir("torn-clean");
        let mut w = ShardWriter::open(&clean_dir, 0, &empty, IoGuard::inert()).unwrap();
        for r in rows {
            w.append_row(r).unwrap();
        }
        let clean = w.finish().unwrap();

        // Crashed life: one complete row plus a torn half of the second.
        fs::write(&p, b"{\"a\":1}\n{\"b\":2").unwrap();
        let state = recover(&p).unwrap();
        assert_eq!(state.rows, 1);
        assert_eq!(state.torn_bytes, 6);
        assert_eq!(fs::read(&p).unwrap(), b"{\"a\":1}\n", "tail truncated");
        // Resume: re-append rows[1..] on top of the recovered state.
        let mut w = ShardWriter::open(&dir, 0, &state, IoGuard::inert()).unwrap();
        for r in &rows[state.rows as usize..] {
            w.append_row(r).unwrap();
        }
        let healed = w.finish().unwrap();
        assert_eq!(healed, clean, "healed accounting == uninterrupted accounting");
        assert_eq!(
            fs::read(&p).unwrap(),
            fs::read(shard_path(&clean_dir, 0)).unwrap(),
            "healed bytes == uninterrupted bytes"
        );
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&clean_dir);
    }

    #[test]
    fn recover_on_a_missing_shard_is_an_empty_state() {
        let dir = tmpdir("missing");
        let s = recover(&shard_path(&dir, 9)).unwrap();
        assert_eq!(s.rows, 0);
        assert_eq!(s.bytes, 0);
        assert_eq!(s.torn_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
