//! The crash/resume invariant, property-tested: *kill a sweep anywhere,
//! resume it, and the merged bytes equal an uninterrupted run's* — for any
//! grid, chunking, thread count, and kill point.
//!
//! Two kill mechanisms:
//!
//! * byte-truncation of the active shard (this file, any build) — the
//!   literal on-disk shape a `kill -9` leaves;
//! * injected IO faults (`--features chaos`) — the writer itself fails at
//!   a deterministically chosen event point (short write, failed fsync,
//!   failed rename, torn tail, disk full), the run errors, and a disarmed
//!   resume must still converge to identical bytes.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use pobp_engine::{Algo, EngineConfig};
use pobp_sweep::{run_sweep, SweepConfig, SweepSpec};

/// A fresh scratch directory per proptest case.
fn case_dir(tag: &str) -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "pobp-sweep-prop-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Decodes a small grid from the generated knobs. Sizes stay small (n ≤ 8,
/// k ≤ 2) so a case solves in milliseconds.
fn decode_spec(extra_n: bool, seeds: u64, ks: usize, chunk_cells: usize) -> SweepSpec {
    SweepSpec {
        ns: if extra_n { vec![5, 7] } else { vec![6] },
        ks: (0..ks as u32).collect(),
        seeds: (0..seeds).collect(),
        algo: Algo::Reduction,
        machines: 1,
        exact_ref: false,
        chunk_cells,
    }
}

fn cfg(spec: &SweepSpec, threads: usize, resume: bool, max_chunks: Option<usize>) -> SweepConfig {
    SweepConfig {
        spec: spec.clone(),
        engine: EngineConfig { threads, ..EngineConfig::default() },
        resume,
        max_chunks,
        #[cfg(feature = "chaos")]
        chaos: None,
    }
}

/// The uninterrupted baseline: merged bytes of a clean single-threaded run.
fn baseline(spec: &SweepSpec) -> Vec<u8> {
    let dir = case_dir("clean");
    let out = run_sweep(&dir, &cfg(spec, 1, false, None)).unwrap();
    let merged = fs::read(out.merged.expect("clean run merges")).unwrap();
    fs::remove_dir_all(&dir).unwrap();
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Simulated `kill -9`: run some chunks, truncate the next shard at an
    /// arbitrary byte (as if the process died mid-write), resume with an
    /// independently chosen thread count.
    #[test]
    fn truncation_killed_sweeps_resume_byte_identically(
        extra_n in AnyBool,
        seeds in 1u64..4,
        ks in 1usize..4,
        chunk_cells in 1usize..4,
        kill_after in 0usize..3,
        cut_frac in 0.0f64..1.0,
        resume_threads in 1usize..5,
    ) {
        let spec = decode_spec(extra_n, seeds, ks, chunk_cells);
        let expect = baseline(&spec);

        let dir = case_dir("kill");
        let chunks_total = spec.chunks().len();
        let ran = kill_after.min(chunks_total.saturating_sub(1));
        if ran > 0 {
            run_sweep(&dir, &cfg(&spec, 1, false, Some(ran))).unwrap();
        } else {
            // Kill "before the first chunk": manifest exists, no shards.
            run_sweep(&dir, &cfg(&spec, 1, false, Some(0))).unwrap();
        }
        // The shard the dying process was writing: an arbitrary prefix of
        // what a complete chunk would have produced.
        let ref_dir = case_dir("kill-ref");
        run_sweep(&ref_dir, &cfg(&spec, 1, false, Some(ran + 1))).unwrap();
        let victim = format!("shard-{ran:05}.jsonl");
        let full = fs::read(ref_dir.join(&victim)).unwrap();
        let cut = (full.len() as f64 * cut_frac) as usize;
        fs::write(dir.join(&victim), &full[..cut]).unwrap();
        fs::remove_dir_all(&ref_dir).unwrap();

        let out = run_sweep(&dir, &cfg(&spec, resume_threads, true, None)).unwrap();
        let merged = fs::read(out.merged.expect("resume completes")).unwrap();
        prop_assert_eq!(&merged, &expect);
        prop_assert_eq!(out.chunks_skipped, ran);
        // Double-resume is a no-op that still verifies and re-merges.
        let again = run_sweep(&dir, &cfg(&spec, 1, true, None)).unwrap();
        prop_assert_eq!(again.rows_written, 0);
        prop_assert_eq!(&fs::read(again.merged.unwrap()).unwrap(), &expect);
        fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(feature = "chaos")]
mod chaos {
    use super::*;
    use pobp_engine::{FaultPlan, FaultSite};
    use pobp_sweep::Manifest;
    use std::sync::Arc;

    const IO_SITES: [FaultSite; 5] = [
        FaultSite::IoShortWrite,
        FaultSite::IoFsync,
        FaultSite::IoRename,
        FaultSite::IoTornTail,
        FaultSite::IoDiskFull,
    ];

    fn armed(spec: &SweepSpec, threads: usize, plan: &Arc<FaultPlan>) -> SweepConfig {
        SweepConfig {
            spec: spec.clone(),
            engine: EngineConfig { threads, ..EngineConfig::default() },
            resume: false,
            max_chunks: None,
            chaos: Some(Arc::clone(plan)),
        }
    }

    /// Drives the sweep to completion with faults disarmed, fresh or
    /// resumed depending on how far the armed run got before erroring.
    fn finish_disarmed(dir: &std::path::Path, spec: &SweepSpec) -> Vec<u8> {
        let resume = Manifest::load(dir).unwrap().is_some();
        let out = run_sweep(dir, &cfg(spec, 1, resume, None)).unwrap();
        fs::read(out.merged.expect("disarmed run completes")).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// An injected IO fault kills the run at a deterministically chosen
        /// event point; a disarmed resume converges to the clean bytes.
        #[test]
        fn io_fault_killed_sweeps_resume_byte_identically(
            site_idx in 0usize..5,
            rate_pct in 5u32..=100,
            chaos_seed in 0u64..1_000,
            chunk_cells in 1usize..4,
        ) {
            let spec = decode_spec(true, 2, 3, chunk_cells);
            let expect = baseline(&spec);
            let plan = Arc::new(
                FaultPlan::new(chaos_seed)
                    .with_rate(IO_SITES[site_idx], f64::from(rate_pct) / 100.0),
            );
            let dir = case_dir("io");
            let first = run_sweep(&dir, &armed(&spec, 1, &plan));
            let merged = match first {
                // No guarded op drew the fault: already complete.
                Ok(out) => fs::read(out.merged.expect("ok run merges")).unwrap(),
                // The writer failed mid-sweep; the directory must still be
                // resumable (or, if the very first manifest write died,
                // freshly startable).
                Err(_) => finish_disarmed(&dir, &spec),
            };
            prop_assert_eq!(&merged, &expect);
            fs::remove_dir_all(&dir).ok();
        }

        /// Fault decisions are a pure function of (plan, spec): the same
        /// armed run leaves byte-identical shards and the same outcome on
        /// any thread count.
        #[test]
        fn injected_faults_replay_identically_across_threads(
            site_idx in 0usize..5,
            rate_pct in 10u32..=60,
            chaos_seed in 0u64..1_000,
        ) {
            let spec = decode_spec(false, 3, 2, 1);
            let plan = Arc::new(
                FaultPlan::new(chaos_seed)
                    .with_rate(IO_SITES[site_idx], f64::from(rate_pct) / 100.0),
            );
            let snapshot = |threads: usize| {
                let dir = case_dir("replay");
                let res = run_sweep(&dir, &armed(&spec, threads, &plan));
                let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(&dir)
                    .map(|rd| {
                        rd.filter_map(Result::ok)
                            .map(|e| {
                                (
                                    e.file_name().to_string_lossy().into_owned(),
                                    fs::read(e.path()).unwrap(),
                                )
                            })
                            // heartbeat.json is wall-clock telemetry
                            // (telemetry builds), explicitly outside the
                            // byte-identity contract.
                            .filter(|(name, _)| name != "heartbeat.json")
                            .collect()
                    })
                    .unwrap_or_default();
                files.sort();
                fs::remove_dir_all(&dir).ok();
                (res.is_ok(), files)
            };
            let (ok1, files1) = snapshot(1);
            let (ok4, files4) = snapshot(4);
            prop_assert_eq!(ok1, ok4);
            prop_assert_eq!(files1, files4);
        }
    }
}
