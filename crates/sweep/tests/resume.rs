//! The resume contract, deterministically: every crash state `run_sweep`
//! documents (between chunks, mid-shard, shard-done-unrecorded) resumes to
//! a merged file byte-identical to an uninterrupted run's, and the guard
//! rails (foreign directories, mismatched specs, tampered shards) fail
//! loudly instead of merging garbage.

use std::fs;
use std::path::{Path, PathBuf};

use pobp_engine::{Algo, EngineConfig};
use pobp_sweep::{run_sweep, Manifest, SweepConfig, SweepSpec};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pobp-sweep-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn spec(chunk_cells: usize) -> SweepSpec {
    SweepSpec {
        ns: vec![6, 8],
        ks: vec![0, 1, 2],
        seeds: vec![0, 1],
        algo: Algo::Reduction,
        machines: 1,
        exact_ref: false,
        chunk_cells,
    }
}

fn cfg(spec: SweepSpec, threads: usize, resume: bool, max_chunks: Option<usize>) -> SweepConfig {
    SweepConfig {
        spec,
        engine: EngineConfig { threads, ..EngineConfig::default() },
        resume,
        max_chunks,
        #[cfg(feature = "chaos")]
        chaos: None,
    }
}

/// A complete sweep of `spec` into a fresh directory; returns the merged
/// bytes (and removes the directory).
fn clean_merged(tag: &str, spec: SweepSpec, threads: usize) -> Vec<u8> {
    let dir = tmpdir(tag);
    let out = run_sweep(&dir, &cfg(spec, threads, false, None)).unwrap();
    let merged = fs::read(out.merged.expect("complete run merges")).unwrap();
    fs::remove_dir_all(&dir).unwrap();
    merged
}

fn shard(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:05}.jsonl"))
}

#[test]
fn merged_bytes_are_invariant_under_threads_and_chunking() {
    let baseline = clean_merged("base", spec(1), 1);
    assert!(!baseline.is_empty());
    assert_eq!(
        baseline.iter().filter(|&&b| b == b'\n').count(),
        spec(1).rows(),
        "one line per grid row"
    );
    // Thread count is a pure performance knob…
    assert_eq!(clean_merged("t4", spec(1), 4), baseline);
    // …and so is the chunk size: it moves the shard boundaries (and the
    // spec digest), but never the merged bytes.
    for chunk_cells in [2, 3, 100] {
        assert_eq!(clean_merged("cc", spec(chunk_cells), 4), baseline, "chunk_cells={chunk_cells}");
    }
}

#[test]
fn budget_interrupted_runs_resume_to_identical_bytes() {
    let baseline = clean_merged("budget-base", spec(2), 1);
    let dir = tmpdir("budget");
    // One chunk per invocation, alternating thread counts: the on-disk
    // stream may be produced by any mix of lives.
    let first = run_sweep(&dir, &cfg(spec(2), 1, false, Some(1))).unwrap();
    assert_eq!(first.chunks_completed, 1);
    assert!(first.merged.is_none(), "interrupted run must not merge");
    let mut threads = 4;
    loop {
        let out = run_sweep(&dir, &cfg(spec(2), threads, true, Some(1))).unwrap();
        threads = if threads == 4 { 1 } else { 4 };
        if let Some(merged) = out.merged {
            assert_eq!(fs::read(merged).unwrap(), baseline);
            break;
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_shard_tails_are_healed_byte_identically() {
    // Reference directory: a complete run with the same chunking.
    let ref_dir = tmpdir("torn-ref");
    let out = run_sweep(&ref_dir, &cfg(spec(2), 1, false, None)).unwrap();
    let baseline = fs::read(out.merged.unwrap()).unwrap();
    let full_shard1 = fs::read(shard(&ref_dir, 1)).unwrap();

    // Crashed directory: chunk 0 recorded, then "the process died" midway
    // through shard 1 — a clean prefix of rows plus a torn half-row.
    let dir = tmpdir("torn");
    run_sweep(&dir, &cfg(spec(2), 1, false, Some(1))).unwrap();
    let cut = full_shard1.len() / 2;
    fs::write(shard(&dir, 1), &full_shard1[..cut]).unwrap();

    let resumed = run_sweep(&dir, &cfg(spec(2), 4, true, None)).unwrap();
    let torn = !full_shard1[..cut].ends_with(b"\n");
    assert_eq!(resumed.torn_bytes > 0, torn, "cut mid-row leaves a torn tail");
    assert!(resumed.rows_written > 0, "the lost remainder is recomputed");
    assert_eq!(fs::read(resumed.merged.unwrap()).unwrap(), baseline);
    fs::remove_dir_all(&ref_dir).unwrap();
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn complete_but_unrecorded_shards_are_adopted_without_rerunning() {
    // The third crash state: the shard was fully written and fsynced, the
    // process died before the manifest recorded it.
    let ref_dir = tmpdir("adopt-ref");
    let out = run_sweep(&ref_dir, &cfg(spec(2), 1, false, None)).unwrap();
    let baseline = fs::read(out.merged.unwrap()).unwrap();
    let full_shard1 = fs::read(shard(&ref_dir, 1)).unwrap();
    let total_chunks = out.chunks_total;

    let dir = tmpdir("adopt");
    run_sweep(&dir, &cfg(spec(2), 1, false, Some(1))).unwrap();
    fs::write(shard(&dir, 1), &full_shard1).unwrap();
    let resumed = run_sweep(&dir, &cfg(spec(2), 1, true, None)).unwrap();
    assert_eq!(resumed.chunks_skipped, 1);
    let shard1_rows = full_shard1.iter().filter(|&&b| b == b'\n').count() as u64;
    assert_eq!(resumed.rows_recovered, shard1_rows, "whole shard recovered, zero rows re-run");
    assert_eq!(
        resumed.chunks_completed,
        total_chunks - 1,
        "the adopted chunk still gets recorded"
    );
    assert_eq!(fs::read(resumed.merged.unwrap()).unwrap(), baseline);
    fs::remove_dir_all(&ref_dir).unwrap();
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn guard_rails_fail_loudly() {
    let dir = tmpdir("rails");
    run_sweep(&dir, &cfg(spec(2), 1, false, Some(1))).unwrap();

    // Fresh run into a checkpointed directory: refused, points at --resume.
    let err = run_sweep(&dir, &cfg(spec(2), 1, false, None)).unwrap_err();
    assert!(err.contains("--resume"), "{err}");

    // Resume with a different grid: refused with both specs shown.
    let mut wrong = spec(2);
    wrong.ns = vec![6, 8, 10];
    let err = run_sweep(&dir, &cfg(wrong, 1, true, None)).unwrap_err();
    assert!(err.contains("does not match"), "{err}");

    // Resume over a tampered recorded shard: digest verification trips.
    let mut bytes = fs::read(shard(&dir, 0)).unwrap();
    bytes[0] ^= 1;
    fs::write(shard(&dir, 0), &bytes).unwrap();
    let err = run_sweep(&dir, &cfg(spec(2), 1, true, None)).unwrap_err();
    assert!(err.contains("does not match its manifest record"), "{err}");
    bytes[0] ^= 1;
    fs::write(shard(&dir, 0), &bytes).unwrap();

    // An unrecorded shard with more rows than the chunk can hold is not
    // ours: refuse instead of "healing" it into the merge.
    let many: String = "{}\n".repeat(1000);
    fs::write(shard(&dir, 1), many).unwrap();
    let err = run_sweep(&dir, &cfg(spec(2), 1, true, None)).unwrap_err();
    assert!(err.contains("not this sweep's shard"), "{err}");
    fs::remove_dir_all(&dir).unwrap();

    // Resume into an empty directory: nothing to resume.
    let empty = tmpdir("rails-empty");
    let err = run_sweep(&empty, &cfg(spec(2), 1, true, None)).unwrap_err();
    assert!(err.contains("nothing to resume"), "{err}");

    // Degenerate specs are rejected before any IO.
    let mut s = spec(2);
    s.ks.clear();
    assert!(run_sweep(&empty, &cfg(s, 1, false, None)).unwrap_err().contains("empty grid"));
    let mut s = spec(2);
    s.chunk_cells = 0;
    assert!(run_sweep(&empty, &cfg(s, 1, false, None)).unwrap_err().contains("--chunk-cells"));
    let _ = fs::remove_dir_all(&empty);
}

/// `--chunk-cells` is a property of the checkpoint, not the request: the
/// shards on disk were already cut at the manifest's chunk size, so a
/// resume adopts it no matter what the caller asks for.
#[test]
fn resume_adopts_the_checkpoints_chunking() {
    let baseline = clean_merged("adopt-base", spec(1), 1);
    let dir = tmpdir("adopt");
    let first = run_sweep(&dir, &cfg(spec(1), 1, false, Some(2))).unwrap();
    assert!(first.merged.is_none());

    // Resume with a wildly different (even defaulted) chunk size.
    let resumed = run_sweep(&dir, &cfg(spec(100), 4, true, None)).unwrap();
    assert_eq!(resumed.chunks_total, first.chunks_total, "plan re-cut at the checkpoint's size");
    assert_eq!(resumed.chunks_skipped, 2);
    assert_eq!(fs::read(resumed.merged.unwrap()).unwrap(), baseline);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn manifest_on_disk_matches_the_documented_schema() {
    let dir = tmpdir("schema");
    run_sweep(&dir, &cfg(spec(2), 1, false, None)).unwrap();
    let m = Manifest::load(&dir).unwrap().expect("manifest exists");
    assert_eq!(m.chunks_total, spec(2).chunks().len());
    assert_eq!(m.done.len(), m.chunks_total);
    assert_eq!(m.spec, spec(2).spec_string());
    assert_eq!(m.spec_digest, spec(2).digest());
    // Keys/digests round-trip through the 0x-hex convention at full width.
    let text = fs::read_to_string(dir.join("manifest.json")).unwrap();
    assert!(text.contains("\"key\":\"0x"), "{text}");
    fs::remove_dir_all(&dir).unwrap();
}
