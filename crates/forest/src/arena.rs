//! Index-arena rose forests.
//!
//! All k-BAS algorithms (§3 of the paper) operate on node-valued forests.
//! The arena representation (indices instead of boxes) gives O(1) parent and
//! child access, cheap per-node side tables (`Vec<T>` indexed by `NodeId`),
//! and — critically — *iterative* traversals that survive the million-node,
//! depth-10^6 path graphs used in the loss-factor experiments, where a
//! recursive walk would overflow the stack.
//!
//! **Storage.** Child lists live in a CSR (compressed sparse row) layout:
//! one flat `Vec<NodeId>` plus an offset table, so `children(u)` is a slice
//! into a single allocation instead of one heap `Vec` per node. The CSR is
//! derived from the parent array on first query (*sealing* the forest);
//! construction via [`Forest::add_root`]/[`Forest::add_child`] must finish
//! before the first child query — mutating a sealed forest panics. Both
//! construction paths append nodes in ascending id order, so the CSR is a
//! counting sort over the parent array and preserves insertion order.

use pobp_core::Value;
use std::sync::OnceLock;

/// Identifier of a node inside a [`Forest`] (its index).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The CSR child table: `idx[off[u] .. off[u + 1]]` are the children of
/// `u`, in insertion order. Derived state — rebuilt from the parent array.
#[derive(Debug, Default)]
struct Csr {
    off: Vec<u32>,
    idx: Vec<NodeId>,
}

impl Csr {
    /// Counting sort over the parent array. Children end up in ascending
    /// id order, which *is* insertion order: both construction paths
    /// (`add_child`, `from_parents`) hand out ids ascending.
    fn build(parent: &[Option<NodeId>]) -> Csr {
        let n = parent.len();
        assert!(n < u32::MAX as usize, "forest too large for CSR offsets");
        let mut off = vec![0u32; n + 1];
        for p in parent.iter().flatten() {
            off[p.0 + 1] += 1;
        }
        for i in 0..n {
            off[i + 1] += off[i];
        }
        let mut idx = vec![NodeId(0); off[n] as usize];
        let mut cursor = off.clone();
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                let c = &mut cursor[p.0];
                idx[*c as usize] = NodeId(i);
                *c += 1;
            }
        }
        Csr { off, idx }
    }
}

/// A rooted forest with positive node values.
#[derive(Debug, Default)]
pub struct Forest {
    values: Vec<Value>,
    parent: Vec<Option<NodeId>>,
    roots: Vec<NodeId>,
    /// Lazily-built CSR child table; materializing it seals the forest.
    csr: OnceLock<Csr>,
}

impl Clone for Forest {
    fn clone(&self) -> Self {
        // The CSR is derived state — cloning re-derives it on demand
        // instead of copying, and the clone starts out unsealed.
        Forest {
            values: self.values.clone(),
            parent: self.parent.clone(),
            roots: self.roots.clone(),
            csr: OnceLock::new(),
        }
    }
}

impl PartialEq for Forest {
    fn eq(&self, other: &Self) -> bool {
        // Sealing state and the derived CSR don't participate in equality.
        self.values == other.values
            && self.parent == other.parent
            && self.roots == other.roots
    }
}

impl Forest {
    /// The empty forest.
    pub fn new() -> Self {
        Forest::default()
    }

    /// Panics when the forest is already sealed (CSR built): its child
    /// table would go stale.
    #[inline]
    fn assert_unsealed(&self) {
        assert!(
            self.csr.get().is_none(),
            "forest is sealed (children were queried); mutation after sealing is a bug"
        );
    }

    /// Adds a new tree root with the given value, returning its id.
    ///
    /// # Panics
    /// Panics if `value` is not strictly positive (Definition 3.3 assumes
    /// `val : V → R+`), or if the forest is already [sealed](Self::seal).
    pub fn add_root(&mut self, value: Value) -> NodeId {
        assert!(value > 0.0, "node values must be positive, got {value}");
        self.assert_unsealed();
        let id = NodeId(self.values.len());
        self.values.push(value);
        self.parent.push(None);
        self.roots.push(id);
        id
    }

    /// Adds a child of `parent` with the given value, returning its id.
    ///
    /// # Panics
    /// Panics on a non-positive value, an out-of-range parent, or a
    /// [sealed](Self::seal) forest.
    pub fn add_child(&mut self, parent: NodeId, value: Value) -> NodeId {
        assert!(value > 0.0, "node values must be positive, got {value}");
        assert!(parent.0 < self.values.len(), "unknown parent {parent}");
        self.assert_unsealed();
        let id = NodeId(self.values.len());
        self.values.push(value);
        self.parent.push(Some(parent));
        id
    }

    /// Builds a forest from parallel `values` / `parent` arrays
    /// (`parent[i] = None` for roots). Children keep index order. The
    /// result is already sealed (the cycle check walks the child table).
    ///
    /// # Panics
    /// Panics on non-positive values, out-of-range parents, or cycles.
    pub fn from_parents(values: Vec<Value>, parent: Vec<Option<usize>>) -> Self {
        assert_eq!(values.len(), parent.len());
        let n = values.len();
        for &v in &values {
            assert!(v > 0.0, "node values must be positive, got {v}");
        }
        let mut roots = Vec::new();
        for (i, &p) in parent.iter().enumerate() {
            match p {
                Some(p) => assert!(p < n, "parent index {p} out of range"),
                None => roots.push(NodeId(i)),
            }
        }
        let forest = Forest {
            values,
            parent: parent.iter().map(|p| p.map(NodeId)).collect(),
            roots,
            csr: OnceLock::new(),
        };
        assert!(
            forest.is_acyclic(),
            "parent array contains a cycle (not a forest)"
        );
        forest
    }

    /// The CSR child table, built on first use (sealing the forest).
    #[inline]
    fn csr(&self) -> &Csr {
        self.csr.get_or_init(|| Csr::build(&self.parent))
    }

    /// Builds the CSR child table now. Queries do this implicitly; an
    /// explicit seal documents the construction/query phase boundary and
    /// makes later mutation panic deterministically.
    pub fn seal(&mut self) {
        let _ = self.csr();
    }

    /// Whether the CSR child table has been materialized.
    pub fn is_sealed(&self) -> bool {
        self.csr.get().is_some()
    }

    fn is_acyclic(&self) -> bool {
        // Every node must be reachable from a root; a cycle is unreachable.
        let mut seen = vec![false; self.len()];
        let mut count = 0usize;
        let mut stack: Vec<NodeId> = self.roots.clone();
        while let Some(u) = stack.pop() {
            if std::mem::replace(&mut seen[u.0], true) {
                return false; // duplicate child edge
            }
            count += 1;
            stack.extend(self.children(u).iter().copied());
        }
        count == self.len()
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the forest has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value of node `u`.
    #[inline]
    pub fn value(&self, u: NodeId) -> Value {
        self.values[u.0]
    }

    /// The parent of `u`, or `None` for roots.
    #[inline]
    pub fn parent(&self, u: NodeId) -> Option<NodeId> {
        self.parent[u.0]
    }

    /// The children of `u`, in insertion order (`C_T(u)` of §3.1).
    ///
    /// A slice into the flat CSR child table; the first call seals the
    /// forest against further mutation.
    #[inline]
    pub fn children(&self, u: NodeId) -> &[NodeId] {
        let csr = self.csr();
        &csr.idx[csr.off[u.0] as usize..csr.off[u.0 + 1] as usize]
    }

    /// The range of `u`'s children inside the flat CSR child table.
    ///
    /// Lets callers lay out per-child side tables in one flat allocation
    /// (slot `children_range(u)` holds data for `children(u)`, aligned
    /// index-for-index). Seals the forest like [`Self::children`].
    #[inline]
    pub fn children_range(&self, u: NodeId) -> std::ops::Range<usize> {
        let csr = self.csr();
        csr.off[u.0] as usize..csr.off[u.0 + 1] as usize
    }

    /// Total number of parent→child edges (`len` of the flat child table).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.csr().idx.len()
    }

    /// Degree of `u`: its number of children (`deg_T(u)` of §3.1).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        let csr = self.csr();
        (csr.off[u.0 + 1] - csr.off[u.0]) as usize
    }

    /// Whether `u` has no children.
    #[inline]
    pub fn is_leaf(&self, u: NodeId) -> bool {
        self.degree(u) == 0
    }

    /// The roots of the forest, in insertion order.
    #[inline]
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// All node ids, ascending.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone + use<> {
        (0..self.values.len()).map(NodeId)
    }

    /// Total value `val(V)` of the forest.
    pub fn total_value(&self) -> Value {
        self.values.iter().sum()
    }

    /// Total value of a node subset given as a membership mask.
    pub fn masked_value(&self, keep: &[bool]) -> Value {
        debug_assert_eq!(keep.len(), self.len());
        self.values
            .iter()
            .zip(keep)
            .filter_map(|(v, &k)| k.then_some(*v))
            .sum()
    }

    /// Node ids in a *top-down* order: every node appears after its parent.
    ///
    /// Iterative (no recursion) — safe on path graphs of arbitrary depth.
    pub fn top_down_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.len());
        let mut stack: Vec<NodeId> = self.roots.iter().rev().copied().collect();
        while let Some(u) = stack.pop() {
            order.push(u);
            stack.extend(self.children(u).iter().rev().copied());
        }
        debug_assert_eq!(order.len(), self.len());
        order
    }

    /// Node ids in a *bottom-up* order: every node appears after all its
    /// children — the traversal order of procedure `TM` and `MaxContract`.
    pub fn bottom_up_order(&self) -> Vec<NodeId> {
        let mut order = self.top_down_order();
        order.reverse();
        order
    }

    /// Depth of every node (roots have depth 0).
    pub fn depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.len()];
        for u in self.top_down_order() {
            if let Some(p) = self.parent(u) {
                depth[u.0] = depth[p.0] + 1;
            }
        }
        depth
    }

    /// Number of nodes in the subtree `T(u)` of every node `u`.
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let mut size = vec![1usize; self.len()];
        for u in self.bottom_up_order() {
            for &c in self.children(u) {
                size[u.0] += size[c.0];
            }
        }
        size
    }

    /// Total value of the subtree `T(u)` of every node `u`.
    pub fn subtree_values(&self) -> Vec<Value> {
        let mut val = self.values.clone();
        for u in self.bottom_up_order() {
            for &c in self.children(u) {
                val[u.0] += val[c.0];
            }
        }
        val
    }

    /// Whether `anc` is a proper ancestor of `node`.
    pub fn is_ancestor(&self, anc: NodeId, node: NodeId) -> bool {
        let mut cur = self.parent(node);
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// Number of leaves of the forest.
    pub fn leaf_count(&self) -> usize {
        self.ids().filter(|&u| self.is_leaf(u)).count()
    }

    /// The maximal node degree.
    pub fn max_degree(&self) -> usize {
        let csr = self.csr();
        csr.off.windows(2).map(|w| (w[1] - w[0]) as usize).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the tree
    /// ```text
    ///        r(10)
    ///       /     \
    ///    a(5)     b(3)
    ///    /  \
    /// c(2)  d(1)
    /// ```
    fn sample() -> (Forest, [NodeId; 5]) {
        let mut f = Forest::new();
        let r = f.add_root(10.0);
        let a = f.add_child(r, 5.0);
        let b = f.add_child(r, 3.0);
        let c = f.add_child(a, 2.0);
        let d = f.add_child(a, 1.0);
        (f, [r, a, b, c, d])
    }

    #[test]
    fn construction_and_queries() {
        let (f, [r, a, b, c, d]) = sample();
        assert_eq!(f.len(), 5);
        assert_eq!(f.roots(), &[r]);
        assert_eq!(f.children(r), &[a, b]);
        assert_eq!(f.children(a), &[c, d]);
        assert_eq!(f.degree(r), 2);
        assert_eq!(f.degree(c), 0);
        assert!(f.is_leaf(b));
        assert!(!f.is_leaf(a));
        assert_eq!(f.parent(c), Some(a));
        assert_eq!(f.parent(r), None);
        assert_eq!(f.total_value(), 21.0);
        assert_eq!(f.max_degree(), 2);
        assert_eq!(f.leaf_count(), 3);
    }

    #[test]
    fn from_parents_roundtrip() {
        let (f, _) = sample();
        let parents: Vec<Option<usize>> =
            f.ids().map(|u| f.parent(u).map(|p| p.0)).collect();
        let values: Vec<f64> = f.ids().map(|u| f.value(u)).collect();
        let g = Forest::from_parents(values, parents);
        assert_eq!(f, g);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn from_parents_rejects_cycle() {
        let _ = Forest::from_parents(vec![1.0, 1.0], vec![Some(1), Some(0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_value() {
        let mut f = Forest::new();
        f.add_root(0.0);
    }

    #[test]
    fn orders_respect_parenthood() {
        let (f, _) = sample();
        let td = f.top_down_order();
        assert_eq!(td.len(), 5);
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (i, u) in td.iter().enumerate() {
                p[u.0] = i;
            }
            p
        };
        for u in f.ids() {
            if let Some(par) = f.parent(u) {
                assert!(pos[par.0] < pos[u.0], "parent after child in top-down");
            }
        }
        let bu = f.bottom_up_order();
        for (i, u) in bu.iter().enumerate() {
            for &c in f.children(*u) {
                assert!(bu[..i].contains(&c), "child after parent in bottom-up");
            }
        }
    }

    #[test]
    fn deep_path_does_not_overflow() {
        // A path of 200k nodes; recursive traversal would blow the stack.
        let mut f = Forest::new();
        let mut cur = f.add_root(1.0);
        for _ in 0..200_000 {
            cur = f.add_child(cur, 1.0);
        }
        assert_eq!(f.bottom_up_order().len(), 200_001);
        let depths = f.depths();
        assert_eq!(depths[cur.0], 200_000);
        let sizes = f.subtree_sizes();
        assert_eq!(sizes[f.roots()[0].0], 200_001);
    }

    #[test]
    fn subtree_aggregates() {
        let (f, [r, a, b, c, d]) = sample();
        let sizes = f.subtree_sizes();
        assert_eq!(sizes[r.0], 5);
        assert_eq!(sizes[a.0], 3);
        assert_eq!(sizes[b.0], 1);
        let vals = f.subtree_values();
        assert_eq!(vals[r.0], 21.0);
        assert_eq!(vals[a.0], 8.0);
        assert_eq!(vals[c.0], 2.0);
        let _ = d;
    }

    #[test]
    fn ancestor_checks() {
        let (f, [r, a, b, c, _d]) = sample();
        assert!(f.is_ancestor(r, c));
        assert!(f.is_ancestor(a, c));
        assert!(!f.is_ancestor(b, c));
        assert!(!f.is_ancestor(c, a));
        assert!(!f.is_ancestor(r, r), "proper ancestry only");
    }

    #[test]
    fn masked_value_sums_kept() {
        let (f, _) = sample();
        assert_eq!(f.masked_value(&[true, false, true, false, false]), 13.0);
        assert_eq!(f.masked_value(&[false; 5]), 0.0);
    }

    #[test]
    #[should_panic(expected = "sealed")]
    fn add_child_after_seal_panics() {
        let mut f = Forest::new();
        let r = f.add_root(1.0);
        assert_eq!(f.children(r), &[] as &[NodeId]); // seals
        f.add_child(r, 1.0);
    }

    #[test]
    #[should_panic(expected = "sealed")]
    fn add_root_after_seal_panics() {
        let mut f = Forest::new();
        f.add_root(1.0);
        f.seal();
        f.add_root(1.0);
    }

    #[test]
    fn clone_of_sealed_forest_is_mutable() {
        let mut f = Forest::new();
        let r = f.add_root(1.0);
        f.seal();
        assert!(f.is_sealed());
        let mut g = f.clone();
        assert!(!g.is_sealed());
        let c = g.add_child(r, 2.0);
        assert_eq!(g.children(r), &[c]);
        assert_ne!(f, g);
    }

    #[test]
    fn children_range_matches_children() {
        let (f, ids) = sample();
        let csr_flat: Vec<NodeId> = f
            .ids()
            .flat_map(|u| f.children(u).iter().copied())
            .collect();
        assert_eq!(csr_flat.len(), f.edge_count());
        for u in ids {
            let r = f.children_range(u);
            assert_eq!(&csr_flat[r], f.children(u));
        }
    }

    #[test]
    fn multi_root_forest() {
        let mut f = Forest::new();
        let r1 = f.add_root(1.0);
        let r2 = f.add_root(2.0);
        f.add_child(r2, 3.0);
        assert_eq!(f.roots(), &[r1, r2]);
        assert_eq!(f.total_value(), 6.0);
        assert_eq!(f.top_down_order()[0], r1);
    }
}
