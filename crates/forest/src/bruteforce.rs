//! Exact exponential k-BAS search — the test oracle for `TM`.

use crate::arena::Forest;
use crate::kbas::{is_kbas, KeepSet};
use pobp_core::Value;

/// Maximum forest size accepted by [`brute_force_kbas`] (2^n subsets).
pub const BRUTE_FORCE_LIMIT: usize = 20;

/// Finds the maximal-value k-BAS by enumerating all `2^n` node subsets.
///
/// # Panics
/// Panics when `forest.len() > BRUTE_FORCE_LIMIT`.
pub fn brute_force_kbas(forest: &Forest, k: u32) -> (Value, KeepSet) {
    let n = forest.len();
    assert!(
        n <= BRUTE_FORCE_LIMIT,
        "brute force limited to {BRUTE_FORCE_LIMIT} nodes, got {n}"
    );
    let mut best_value = 0.0f64;
    let mut best = KeepSet::empty(n);
    for mask in 0u32..(1u32 << n) {
        let keep = KeepSet::from_mask((0..n).map(|i| mask >> i & 1 == 1).collect());
        if !is_kbas(forest, &keep, k) {
            continue;
        }
        let value = keep.value(forest);
        if value > best_value {
            best_value = value;
            best = keep;
        }
    }
    (best_value, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tm::tm;

    #[test]
    fn brute_force_matches_tm_on_small_trees() {
        // Hand-built tree exercising all pruning decisions.
        let mut f = Forest::new();
        let r = f.add_root(1.0);
        let a = f.add_child(r, 6.0);
        let b = f.add_child(r, 2.0);
        f.add_child(a, 3.0);
        f.add_child(a, 3.0);
        f.add_child(a, 3.0);
        f.add_child(b, 9.0);
        for k in 0..4 {
            let (bf, _) = brute_force_kbas(&f, k);
            let res = tm(&f, k);
            assert_eq!(bf, res.value, "k={k}");
        }
    }

    #[test]
    fn empty_forest_yields_zero() {
        let (v, keep) = brute_force_kbas(&Forest::new(), 1);
        assert_eq!(v, 0.0);
        assert!(keep.is_empty());
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn rejects_large_forests() {
        let mut f = Forest::new();
        for _ in 0..=BRUTE_FORCE_LIMIT {
            f.add_root(1.0);
        }
        let _ = brute_force_kbas(&f, 1);
    }
}
