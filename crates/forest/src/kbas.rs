//! The k-BAS definitions of §3.1 as executable predicates, plus the node
//! classification of §3.2.

use crate::arena::{Forest, NodeId};
use pobp_core::Value;

/// The three-way classification of §3.2 used by the `TM` dynamic program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeClass {
    /// Kept in the k-BAS (some descendants may still be deleted).
    Retained,
    /// Deleted together with all its ancestors up to the root
    /// (preserves ancestor independence).
    PrunedUp,
    /// Deleted together with all its descendants.
    PrunedDown,
}

/// A candidate k-BAS: a keep-mask over the nodes of a forest.
#[derive(Clone, Debug, PartialEq)]
pub struct KeepSet {
    keep: Vec<bool>,
}

impl KeepSet {
    /// Builds a keep-set from a mask (`mask.len()` must equal the forest size
    /// when used with one).
    pub fn from_mask(mask: Vec<bool>) -> Self {
        KeepSet { keep: mask }
    }

    /// Builds a keep-set of `n` nodes from the kept ids.
    pub fn from_ids(n: usize, ids: &[NodeId]) -> Self {
        let mut keep = vec![false; n];
        for id in ids {
            keep[id.0] = true;
        }
        KeepSet { keep }
    }

    /// An all-false keep-set for `n` nodes.
    pub fn empty(n: usize) -> Self {
        KeepSet { keep: vec![false; n] }
    }

    /// Whether node `u` is kept.
    #[inline]
    pub fn contains(&self, u: NodeId) -> bool {
        self.keep[u.0]
    }

    /// The underlying mask.
    pub fn mask(&self) -> &[bool] {
        &self.keep
    }

    /// Marks `u` kept.
    pub fn insert(&mut self, u: NodeId) {
        self.keep[u.0] = true;
    }

    /// Number of kept nodes.
    pub fn len(&self) -> usize {
        self.keep.iter().filter(|&&b| b).count()
    }

    /// Whether nothing is kept.
    pub fn is_empty(&self) -> bool {
        !self.keep.iter().any(|&b| b)
    }

    /// The kept node ids, ascending.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.keep
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(NodeId(i)))
    }

    /// Total value of the kept nodes.
    pub fn value(&self, forest: &Forest) -> Value {
        forest.masked_value(&self.keep)
    }
}

/// Whether the keep-set induces an Ancestor-Independent Sub-Forest
/// (Definition 3.1).
///
/// By Lemma 3.7, the induced sub-forest is ancestor-independent iff no
/// *removed* node has both a kept ancestor and a kept descendant. This is
/// checked in two linear passes.
pub fn is_ancestor_independent(forest: &Forest, keep: &KeepSet) -> bool {
    debug_assert_eq!(keep.mask().len(), forest.len());
    let n = forest.len();
    let mut kept_anc = vec![false; n]; // has a kept proper ancestor
    for u in forest.top_down_order() {
        if let Some(p) = forest.parent(u) {
            kept_anc[u.0] = kept_anc[p.0] || keep.contains(p);
        }
    }
    let mut kept_desc = vec![false; n]; // has a kept proper descendant
    for u in forest.bottom_up_order() {
        for &c in forest.children(u) {
            kept_desc[u.0] |= kept_desc[c.0] || keep.contains(c);
        }
    }
    forest
        .ids()
        .all(|u| keep.contains(u) || !(kept_anc[u.0] && kept_desc[u.0]))
}

/// Whether every kept node has at most `k` kept children
/// (the degree bound of Definition 3.2).
pub fn is_k_bounded(forest: &Forest, keep: &KeepSet, k: u32) -> bool {
    debug_assert_eq!(keep.mask().len(), forest.len());
    forest.ids().filter(|&u| keep.contains(u)).all(|u| {
        let kept_children = forest
            .children(u)
            .iter()
            .filter(|&&c| keep.contains(c))
            .count();
        kept_children <= k as usize
    })
}

/// Whether the keep-set is a valid k-BAS (Definition 3.2): an ancestor-
/// independent sub-forest with degree bounded by `k`.
pub fn is_kbas(forest: &Forest, keep: &KeepSet, k: u32) -> bool {
    is_ancestor_independent(forest, keep) && is_k_bounded(forest, keep, k)
}

/// Derives the keep-set from a full classification
/// (kept = [`NodeClass::Retained`]).
pub fn keep_from_classes(classes: &[NodeClass]) -> KeepSet {
    KeepSet::from_mask(classes.iter().map(|c| *c == NodeClass::Retained).collect())
}

/// Checks the structural constraints of Observation 3.8 on a classification:
///
/// * (a) a retained node has no pruned-up descendants (equivalently: a
///   retained node's children are retained or pruned-down);
/// * (c) a pruned-down node has only pruned-down descendants.
pub fn classes_consistent(forest: &Forest, classes: &[NodeClass]) -> bool {
    debug_assert_eq!(classes.len(), forest.len());
    forest.ids().all(|u| {
        forest.children(u).iter().all(|&c| match classes[u.0] {
            NodeClass::Retained => classes[c.0] != NodeClass::PrunedUp,
            NodeClass::PrunedUp => true,
            NodeClass::PrunedDown => classes[c.0] == NodeClass::PrunedDown,
        })
    }) && forest.ids().all(|u| {
        // A pruned-up node's ancestors must all be pruned-up (deleted up to
        // the root).
        classes[u.0] != NodeClass::PrunedUp
            || forest.parent(u).is_none_or(|p| classes[p.0] == NodeClass::PrunedUp)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// r — a — c, r — b (values 1 each).
    fn chain_forest() -> (Forest, [NodeId; 4]) {
        let mut f = Forest::new();
        let r = f.add_root(1.0);
        let a = f.add_child(r, 1.0);
        let b = f.add_child(r, 1.0);
        let c = f.add_child(a, 1.0);
        (f, [r, a, b, c])
    }

    #[test]
    fn keepset_basics() {
        let (f, [r, _a, b, _c]) = chain_forest();
        let mut ks = KeepSet::empty(f.len());
        assert!(ks.is_empty());
        ks.insert(r);
        ks.insert(b);
        assert_eq!(ks.len(), 2);
        assert!(ks.contains(r));
        assert!(!ks.contains(NodeId(1)));
        assert_eq!(ks.value(&f), 2.0);
        assert_eq!(ks.ids().collect::<Vec<_>>(), vec![r, b]);
        let ks2 = KeepSet::from_ids(f.len(), &[r, b]);
        assert_eq!(ks, ks2);
    }

    #[test]
    fn ancestor_independence_detects_gap() {
        let (f, [r, a, _b, c]) = chain_forest();
        // Keep r and c but remove a: removed `a` has kept ancestor r and
        // kept descendant c → not ancestor independent.
        let ks = KeepSet::from_ids(f.len(), &[r, c]);
        assert!(!is_ancestor_independent(&f, &ks));
        // Keep the full chain: fine.
        let ks = KeepSet::from_ids(f.len(), &[r, a, c]);
        assert!(is_ancestor_independent(&f, &ks));
        // Keep only c (a and r removed below-nothing/above-kept): fine —
        // r and a have no kept ancestor.
        let ks = KeepSet::from_ids(f.len(), &[c]);
        assert!(is_ancestor_independent(&f, &ks));
    }

    #[test]
    fn two_components_in_sibling_subtrees_are_independent() {
        let (f, [_r, a, b, c]) = chain_forest();
        // Keep {a, c} and {b}: b is not a descendant/ancestor of a or c.
        let ks = KeepSet::from_ids(f.len(), &[a, b, c]);
        assert!(is_ancestor_independent(&f, &ks));
    }

    #[test]
    fn degree_bound() {
        let (f, [r, a, b, _c]) = chain_forest();
        let ks = KeepSet::from_ids(f.len(), &[r, a, b]);
        assert!(is_k_bounded(&f, &ks, 2));
        assert!(!is_k_bounded(&f, &ks, 1)); // r keeps 2 children
        // Removed nodes don't count toward their parent's degree.
        let ks = KeepSet::from_ids(f.len(), &[r, a]);
        assert!(is_k_bounded(&f, &ks, 1));
        // Degree of a kept node counts only *kept* children.
        let ks = KeepSet::from_ids(f.len(), &[r]);
        assert!(is_k_bounded(&f, &ks, 0));
    }

    #[test]
    fn kbas_combines_both() {
        let (f, [r, a, b, c]) = chain_forest();
        assert!(is_kbas(&f, &KeepSet::from_ids(f.len(), &[r, a, c]), 2));
        assert!(!is_kbas(&f, &KeepSet::from_ids(f.len(), &[r, a, b]), 1));
        assert!(!is_kbas(&f, &KeepSet::from_ids(f.len(), &[r, c]), 2));
        assert!(is_kbas(&f, &KeepSet::empty(f.len()), 0));
    }

    #[test]
    fn class_consistency() {
        use NodeClass::*;
        let (f, _) = chain_forest();
        // r retained, a retained, b pruned-down, c retained: consistent.
        assert!(classes_consistent(&f, &[Retained, Retained, PrunedDown, Retained]));
        // Retained r with pruned-up child a: inconsistent (Obs 3.8a).
        assert!(!classes_consistent(&f, &[Retained, PrunedUp, PrunedDown, PrunedDown]));
        // Pruned-down a with retained child c: inconsistent (Obs 3.8c).
        assert!(!classes_consistent(&f, &[PrunedUp, PrunedDown, Retained, Retained]));
        // Pruned-up below retained... pruned-up c under retained a: checked
        // via the ancestor rule: c pruned-up but parent a retained.
        assert!(!classes_consistent(&f, &[Retained, Retained, PrunedDown, PrunedUp]));
        // Pruned-up chain from the root is fine.
        assert!(classes_consistent(&f, &[PrunedUp, PrunedUp, Retained, Retained]));
    }

    #[test]
    fn keep_from_classes_extracts_retained() {
        use NodeClass::*;
        let ks = keep_from_classes(&[Retained, PrunedUp, PrunedDown, Retained]);
        assert_eq!(ks.mask(), &[true, false, false, true]);
    }
}
