//! Materializing a k-BAS as a stand-alone [`Forest`], plus a greedy
//! heuristic baseline for the ablation benches.

use crate::arena::{Forest, NodeId};
use crate::kbas::{is_kbas, KeepSet};
use crate::workspace::{Workspace, UNMAPPED};
use pobp_core::Value;

/// Extracts the sub-forest induced by `keep` as its own [`Forest`].
///
/// Kept nodes whose parent is kept stay attached; kept nodes whose parent is
/// removed become roots of their components (this matches the AISF
/// semantics: removed nodes never connect two kept nodes, which
/// [`is_kbas`] guarantees for valid inputs). Returns the new forest and the
/// mapping from new node ids to the original ones.
pub fn extract_subforest(forest: &Forest, keep: &KeepSet) -> (Forest, Vec<NodeId>) {
    extract_subforest_ws(forest, keep, &mut Workspace::new())
}

/// [`extract_subforest`] with caller-provided scratch memory (the traversal
/// order and the old-id → new-id mapping come from `ws`; the returned
/// forest and back-mapping are freshly allocated outputs).
pub fn extract_subforest_ws(
    forest: &Forest,
    keep: &KeepSet,
    ws: &mut Workspace,
) -> (Forest, Vec<NodeId>) {
    ws.fill_top_down(forest);
    ws.new_id.clear();
    ws.new_id.resize(forest.len(), UNMAPPED);
    let mut out = Forest::new();
    let mut back = Vec::new();
    for i in 0..ws.order.len() {
        let u = ws.order[i];
        if !keep.contains(u) {
            continue;
        }
        let parent_new = forest
            .parent(u)
            .map(|p| ws.new_id[p.0])
            .filter(|&p| p != UNMAPPED);
        let id = match parent_new {
            Some(p) => out.add_child(p, forest.value(u)),
            None => out.add_root(forest.value(u)),
        };
        ws.new_id[u.0] = id;
        debug_assert_eq!(id.0, back.len());
        back.push(u);
    }
    (out, back)
}

/// A greedy k-BAS heuristic (ablation baseline, not from the paper): visit
/// nodes in descending value order and keep each node iff the keep-set
/// stays a valid k-BAS. `O(n² )`-ish — only for moderate sizes.
pub fn greedy_kbas(forest: &Forest, k: u32) -> (Value, KeepSet) {
    let mut order: Vec<NodeId> = forest.ids().collect();
    order.sort_by(|&a, &b| {
        forest
            .value(b)
            .partial_cmp(&forest.value(a))
            .expect("finite values")
            .then(a.cmp(&b))
    });
    let mut keep = KeepSet::empty(forest.len());
    for u in order {
        keep.insert(u);
        if !is_kbas(forest, &keep, k) {
            // Undo: KeepSet has no remove; rebuild without u.
            let ids: Vec<NodeId> = keep.ids().filter(|&v| v != u).collect();
            keep = KeepSet::from_ids(forest.len(), &ids);
        }
    }
    (keep.value(forest), keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tm::tm;

    fn sample() -> (Forest, [NodeId; 5]) {
        let mut f = Forest::new();
        let r = f.add_root(10.0);
        let a = f.add_child(r, 5.0);
        let b = f.add_child(r, 3.0);
        let c = f.add_child(a, 2.0);
        let d = f.add_child(a, 1.0);
        (f, [r, a, b, c, d])
    }

    #[test]
    fn extract_connected_piece() {
        let (f, [r, a, _b, c, _d]) = sample();
        let keep = KeepSet::from_ids(f.len(), &[r, a, c]);
        let (sub, back) = extract_subforest(&f, &keep);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.roots().len(), 1);
        assert_eq!(back.len(), 3);
        assert_eq!(sub.total_value(), 17.0);
        // Structure preserved: r → a → c.
        let new_root = sub.roots()[0];
        assert_eq!(back[new_root.0], r);
        assert_eq!(sub.children(new_root).len(), 1);
    }

    #[test]
    fn extract_multiple_components() {
        let (f, [_r, a, b, c, d]) = sample();
        // Remove the root: a (with c, d) and b become separate components.
        let keep = KeepSet::from_ids(f.len(), &[a, b, c, d]);
        let (sub, _) = extract_subforest(&f, &keep);
        assert_eq!(sub.roots().len(), 2);
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.total_value(), 11.0);
    }

    #[test]
    fn extract_empty() {
        let (f, _) = sample();
        let (sub, back) = extract_subforest(&f, &KeepSet::empty(f.len()));
        assert!(sub.is_empty());
        assert!(back.is_empty());
    }

    #[test]
    fn extracted_tm_result_has_bounded_degree() {
        let (f, _) = sample();
        for k in 0..3u32 {
            let res = tm(&f, k);
            let (sub, _) = extract_subforest(&f, &res.keep);
            assert!(sub.max_degree() <= k as usize, "k={k}");
            assert_eq!(sub.total_value(), res.value);
        }
    }

    #[test]
    fn greedy_is_valid_but_tm_dominates() {
        let (f, _) = sample();
        for k in 0..3u32 {
            let (gv, gk) = greedy_kbas(&f, k);
            assert!(is_kbas(&f, &gk, k));
            assert_eq!(gv, gk.value(&f));
            let opt = tm(&f, k);
            assert!(opt.value >= gv - 1e-9, "k={k}");
        }
    }

    #[test]
    fn greedy_can_be_suboptimal() {
        // Center value 6 with three leaves of value 5: at k = 1 greedy
        // takes the center first (6), then one leaf (11); optimal prunes
        // the center up and takes all leaves (15).
        let mut f = Forest::new();
        let r = f.add_root(6.0);
        for _ in 0..3 {
            f.add_child(r, 5.0);
        }
        let (gv, _) = greedy_kbas(&f, 1);
        let opt = tm(&f, 1);
        assert_eq!(gv, 11.0);
        assert_eq!(opt.value, 15.0);
    }
}
