//! Procedure `TM` (§3.2): the optimal k-BAS dynamic program.
//!
//! For every node `u`, two aggregates are computed bottom-up (Equation 3.1):
//!
//! * `t(u)` — the best value extractable from `T(u)` when `u` is *retained*:
//!   `t(u) = val(u) + Σ_{v ∈ C_k(u)} t(v)` where `C_k(u)` are the `k`
//!   children with the largest `t`-values (the other children are pruned
//!   *down* together with their subtrees);
//! * `m(u)` — the best value when `u` is *pruned up* (deleted with all its
//!   ancestors): `m(u) = Σ_{v ∈ C(u)} max(t(v), m(v))` — every child is then
//!   free to either root its own component (`t`) or be pruned up as well
//!   (`m`).
//!
//! The optimum for the whole forest is `Σ_roots max(t(root), m(root))`, and a
//! top-down second pass turns the argmaxes into the explicit classification
//! of §3.2. The run time is `O(|V| log k)` from the partial selection of the
//! top-k children (`select_nth_unstable` + a sort of the selected prefix —
//! effectively `O(|V|)` for constant `k`).
//!
//! `TM` is *optimal* (it implements the exhaustive recurrence exactly);
//! Theorems 3.9 and 3.20 bound its loss factor against the full forest value
//! by `Θ(log_{k+1} n)`. Both facts are verified in the test-suite (against
//! brute force, and on the Appendix A adversarial tree).

use crate::arena::{Forest, NodeId};
use crate::kbas::{keep_from_classes, KeepSet, NodeClass};
use crate::workspace::Workspace;
use pobp_core::{obs_count, Value};

/// Output of the `TM` dynamic program.
#[derive(Clone, Debug)]
pub struct TmResult {
    /// Optimal k-BAS value for the whole forest.
    pub value: Value,
    /// Per-node classification realizing `value`.
    pub classes: Vec<NodeClass>,
    /// The kept nodes (the k-BAS itself).
    pub keep: KeepSet,
    /// `t(u)` per node (value of `T(u)` when `u` is retained).
    pub t: Vec<Value>,
    /// `m(u)` per node (value of `T(u)` when `u` is pruned up).
    pub m: Vec<Value>,
}

/// Runs procedure `TM` on `forest` with degree bound `k`.
///
/// Returns the maximal-value k-BAS together with the full `t`/`m` tables
/// (used by the Appendix A experiments, which check the closed form of
/// Lemma A.2).
///
/// ```
/// use pobp_forest::{tm, is_kbas, Forest};
///
/// // A star: cheap center, three valuable leaves.
/// let mut f = Forest::new();
/// let center = f.add_root(1.0);
/// for _ in 0..3 { f.add_child(center, 10.0); }
///
/// // With k = 1 the optimum prunes the center *up* and keeps all leaves.
/// let res = tm(&f, 1);
/// assert_eq!(res.value, 30.0);
/// assert!(is_kbas(&f, &res.keep, 1));
/// ```
pub fn tm(forest: &Forest, k: u32) -> TmResult {
    tm_ws(forest, k, &mut Workspace::new())
}

/// [`tm`] with caller-provided scratch memory.
///
/// Identical output; only the traversal order, top-k selection buffer and
/// selected-children table come from `ws` (capacity persists across calls),
/// so steady-state calls allocate nothing but the [`TmResult`] itself.
pub fn tm_ws(forest: &Forest, k: u32, ws: &mut Workspace) -> TmResult {
    obs_count!("forest.tm.runs");
    let n = forest.len();
    let mut t = vec![0.0f64; n];
    let mut m = vec![0.0f64; n];

    ws.fill_top_down(forest);
    // The selected children `C_k(u)` of every node, needed for decision
    // extraction, in one flat table: `C_k(u)` occupies the first
    // `sel_len[u]` slots of `children_range(u)`.
    ws.sel.clear();
    ws.sel.resize(forest.edge_count(), NodeId(0));
    ws.sel_len.clear();
    ws.sel_len.resize(n, 0);

    for i in (0..n).rev() {
        // bottom-up order
        let u = ws.order[i];
        obs_count!("forest.tm.nodes_visited");
        let children = forest.children(u);
        if children.is_empty() {
            t[u.0] = forest.value(u);
            m[u.0] = 0.0;
            continue;
        }
        // m(u) = Σ max(t(v), m(v)).
        m[u.0] = children.iter().map(|&c| t[c.0].max(m[c.0])).sum();
        // t(u) = val(u) + Σ_{top-k by t} t(v). All t(v) ≥ val(v) > 0, so
        // taking min(k, deg) children is always optimal.
        ws.child_t.clear();
        ws.child_t.extend(children.iter().map(|&c| (t[c.0], c)));
        let kk = (k as usize).min(ws.child_t.len());
        if kk > 0 && kk < ws.child_t.len() {
            // Partial selection: largest `kk` to the front.
            obs_count!("forest.tm.topk_selections");
            ws.child_t.select_nth_unstable_by(kk - 1, |a, b| {
                b.0.partial_cmp(&a.0).expect("t-values are finite")
            });
        }
        let top_sum: Value = ws.child_t[..kk].iter().map(|(v, _)| v).sum();
        t[u.0] = forest.value(u) + top_sum;
        let slot = forest.children_range(u).start;
        for (j, &(_, c)) in ws.child_t[..kk].iter().enumerate() {
            ws.sel[slot + j] = c;
        }
        ws.sel_len[u.0] = kk as u32;
    }

    // Decision extraction, top-down.
    let mut classes = vec![NodeClass::PrunedDown; n];
    for &u in &ws.order {
        let class = match forest.parent(u) {
            None => {
                if t[u.0] >= m[u.0] {
                    NodeClass::Retained
                } else {
                    NodeClass::PrunedUp
                }
            }
            Some(p) => match classes[p.0] {
                NodeClass::Retained => {
                    let slot = forest.children_range(p).start;
                    let sel = &ws.sel[slot..slot + ws.sel_len[p.0] as usize];
                    if sel.contains(&u) {
                        NodeClass::Retained
                    } else {
                        NodeClass::PrunedDown
                    }
                }
                NodeClass::PrunedUp => {
                    if t[u.0] >= m[u.0] {
                        NodeClass::Retained
                    } else {
                        NodeClass::PrunedUp
                    }
                }
                NodeClass::PrunedDown => NodeClass::PrunedDown,
            },
        };
        classes[u.0] = class;
    }

    let value = forest
        .roots()
        .iter()
        .map(|&r| t[r.0].max(m[r.0]))
        .sum();
    let keep = keep_from_classes(&classes);
    TmResult { value, classes, keep, t, m }
}

/// The pre-workspace implementation (per-call allocations, per-node child
/// `Vec`s), kept verbatim as the oracle for the differential proptests in
/// [`crate::workspace`]'s test suite.
#[cfg(test)]
pub(crate) fn tm_reference(forest: &Forest, k: u32) -> TmResult {
    let n = forest.len();
    let mut t = vec![0.0f64; n];
    let mut m = vec![0.0f64; n];
    let mut child_t: Vec<(Value, NodeId)> = Vec::new();

    let order = forest.bottom_up_order();
    let mut selected: Vec<Vec<NodeId>> = vec![Vec::new(); n];

    for &u in &order {
        let children = forest.children(u);
        if children.is_empty() {
            t[u.0] = forest.value(u);
            m[u.0] = 0.0;
            continue;
        }
        m[u.0] = children.iter().map(|&c| t[c.0].max(m[c.0])).sum();
        child_t.clear();
        child_t.extend(children.iter().map(|&c| (t[c.0], c)));
        let kk = (k as usize).min(child_t.len());
        if kk > 0 && kk < child_t.len() {
            child_t.select_nth_unstable_by(kk - 1, |a, b| {
                b.0.partial_cmp(&a.0).expect("t-values are finite")
            });
        }
        let top_sum: Value = child_t[..kk].iter().map(|(v, _)| v).sum();
        t[u.0] = forest.value(u) + top_sum;
        selected[u.0] = child_t[..kk].iter().map(|&(_, c)| c).collect();
    }

    let mut classes = vec![NodeClass::PrunedDown; n];
    for &u in order.iter().rev() {
        let class = match forest.parent(u) {
            None => {
                if t[u.0] >= m[u.0] {
                    NodeClass::Retained
                } else {
                    NodeClass::PrunedUp
                }
            }
            Some(p) => match classes[p.0] {
                NodeClass::Retained => {
                    if selected[p.0].contains(&u) {
                        NodeClass::Retained
                    } else {
                        NodeClass::PrunedDown
                    }
                }
                NodeClass::PrunedUp => {
                    if t[u.0] >= m[u.0] {
                        NodeClass::Retained
                    } else {
                        NodeClass::PrunedUp
                    }
                }
                NodeClass::PrunedDown => NodeClass::PrunedDown,
            },
        };
        classes[u.0] = class;
    }

    let value = forest
        .roots()
        .iter()
        .map(|&r| t[r.0].max(m[r.0]))
        .sum();
    let keep = keep_from_classes(&classes);
    TmResult { value, classes, keep, t, m }
}

/// The worst-case loss-factor bound of Theorem 3.9 for a forest of `n`
/// nodes: `log_{k+1} n`, floored at 1 (a forest always retains at least its
/// best single node, so the loss can never exceed... nor be less than 1).
pub fn loss_bound(n: usize, k: u32) -> f64 {
    if n <= 1 {
        return 1.0;
    }
    ((n as f64).ln() / ((k + 1) as f64).ln()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kbas::{classes_consistent, is_kbas};

    fn star(center: f64, leaves: &[f64]) -> Forest {
        let mut f = Forest::new();
        let r = f.add_root(center);
        for &v in leaves {
            f.add_child(r, v);
        }
        f
    }

    #[test]
    fn single_node() {
        let mut f = Forest::new();
        f.add_root(7.0);
        let res = tm(&f, 1);
        assert_eq!(res.value, 7.0);
        assert_eq!(res.classes, vec![NodeClass::Retained]);
        assert_eq!(res.t, vec![7.0]);
        assert_eq!(res.m, vec![0.0]);
    }

    #[test]
    fn star_keeps_top_k_children() {
        // Center 10, leaves 5,4,3,2,1; k = 2 → keep center + {5,4} = 19.
        let f = star(10.0, &[5.0, 4.0, 3.0, 2.0, 1.0]);
        let res = tm(&f, 2);
        assert_eq!(res.value, 19.0);
        assert!(is_kbas(&f, &res.keep, 2));
        assert!(classes_consistent(&f, &res.classes));
        assert_eq!(res.keep.len(), 3);
        assert!(res.keep.contains(NodeId(0)));
        assert!(res.keep.contains(NodeId(1)));
        assert!(res.keep.contains(NodeId(2)));
    }

    #[test]
    fn star_prunes_up_cheap_center() {
        // Center 1 with leaves 10,10,10; k = 1: retaining the center gives
        // 1 + 10 = 11, pruning it up frees all three leaves = 30.
        let f = star(1.0, &[10.0, 10.0, 10.0]);
        let res = tm(&f, 1);
        assert_eq!(res.value, 30.0);
        assert_eq!(res.classes[0], NodeClass::PrunedUp);
        assert!(is_kbas(&f, &res.keep, 1));
        assert_eq!(res.keep.len(), 3);
    }

    #[test]
    fn k_zero_keeps_best_path_endpoints() {
        // Chain r(1) - a(5) - b(2); k = 0: only vertical chains of degree 0,
        // i.e. single paths downward... a 0-BAS is a set of disjoint
        // single-path components of degree ≤ 0 → isolated chains? Degree 0
        // means no kept node has a kept child: kept nodes form an antichain
        // of "bottom-closed" singletons. Best is the single node 5 — but
        // ancestor independence lets us keep several incomparable nodes.
        let mut f = Forest::new();
        let r = f.add_root(1.0);
        let a = f.add_child(r, 5.0);
        let _b = f.add_child(a, 2.0);
        let res = tm(&f, 0);
        assert_eq!(res.value, 5.0);
        assert!(is_kbas(&f, &res.keep, 0));
        assert!(res.keep.contains(a));
    }

    #[test]
    fn k_zero_antichain() {
        // r(1) with children a(3), b(4): pruning r up keeps both leaves.
        let f = star(1.0, &[3.0, 4.0]);
        let res = tm(&f, 0);
        assert_eq!(res.value, 7.0);
        assert!(is_kbas(&f, &res.keep, 0));
    }

    #[test]
    fn large_k_keeps_everything() {
        let f = star(10.0, &[5.0, 4.0, 3.0, 2.0, 1.0]);
        let res = tm(&f, 5);
        assert_eq!(res.value, f.total_value());
        assert_eq!(res.keep.len(), f.len());
    }

    #[test]
    fn multi_root_forest_sums_components() {
        let mut f = Forest::new();
        let r1 = f.add_root(2.0);
        f.add_child(r1, 3.0);
        let r2 = f.add_root(10.0);
        f.add_child(r2, 1.0);
        f.add_child(r2, 1.0);
        // k = 1: tree1 keeps both (5), tree2 keeps 10 + one 1 = 11.
        let res = tm(&f, 1);
        assert_eq!(res.value, 16.0);
        assert!(is_kbas(&f, &res.keep, 1));
    }

    #[test]
    fn tm_output_always_valid_and_consistent() {
        // Deterministic structured forest exercising all three classes.
        let mut f = Forest::new();
        let r = f.add_root(1.0);
        let a = f.add_child(r, 100.0);
        let b = f.add_child(r, 100.0);
        for i in 0..4 {
            f.add_child(a, 10.0 + i as f64);
            f.add_child(b, 20.0 + i as f64);
        }
        for k in 0..5 {
            let res = tm(&f, k);
            assert!(is_kbas(&f, &res.keep, k), "k={k}");
            assert!(classes_consistent(&f, &res.classes), "k={k}");
            assert_eq!(res.keep.value(&f), res.value, "k={k}");
        }
    }

    #[test]
    fn deep_path_is_fully_kept_for_any_k() {
        // A path has degree 1 everywhere; for k ≥ 1 the whole path is a
        // valid k-BAS. Also exercises the iterative traversal at depth 1e5.
        let mut f = Forest::new();
        let mut cur = f.add_root(1.0);
        for _ in 0..100_000 {
            cur = f.add_child(cur, 1.0);
        }
        let res = tm(&f, 1);
        assert_eq!(res.value, f.total_value());
        assert_eq!(res.keep.len(), f.len());
    }

    #[test]
    fn loss_bound_edges() {
        assert_eq!(loss_bound(1, 1), 1.0);
        assert_eq!(loss_bound(0, 3), 1.0);
        assert!((loss_bound(8, 1) - 3.0).abs() < 1e-12); // log2 8
        assert!((loss_bound(9, 2) - 2.0).abs() < 1e-12); // log3 9
        assert_eq!(loss_bound(2, 100), 1.0); // floored at 1
    }
}
