//! Reusable scratch memory for the forest algorithms.
//!
//! The §3 algorithms are linear-time on paper, but a naive implementation
//! re-allocates its traversal orders and side tables on every call, so a
//! sweep over an (instance, k) grid is allocation-bound. A [`Workspace`]
//! owns those buffers and hands them out to the `*_ws` entry points
//! ([`crate::tm_ws`], [`crate::levelled_contraction_ws`],
//! [`crate::extract_subforest_ws`]); lengths are reset on every call but
//! capacity persists, so steady-state calls allocate only their *outputs*.
//!
//! **Reuse contract.** Every `*_ws` function clears the buffers it uses at
//! entry (never relying on leftover contents), so a workspace can be reused
//! across unrelated forests — including after a panic was caught mid-call.

use crate::arena::{Forest, NodeId};
use pobp_core::Value;

/// Reusable scratch buffers for [`crate::tm_ws`],
/// [`crate::levelled_contraction_ws`] and [`crate::extract_subforest_ws`].
///
/// Create one per worker thread and pass it to every call; buffers keep
/// their capacity between calls. A fresh workspace is cheap (all buffers
/// start empty), so the non-`_ws` wrappers just create a throwaway one.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Top-down traversal order (bottom-up = reverse iteration).
    pub(crate) order: Vec<NodeId>,
    /// DFS stack shared by the traversal fillers and contraction.
    pub(crate) stack: Vec<NodeId>,
    /// `tm`: per-node `(t(v), v)` pairs for the top-k child selection.
    pub(crate) child_t: Vec<(Value, NodeId)>,
    /// `tm`: flat selected-children table, laid out at CSR offsets
    /// (`C_k(u)` occupies the first `sel_len[u]` slots of
    /// `Forest::children_range(u)`).
    pub(crate) sel: Vec<NodeId>,
    /// `tm`: number of selected children per node.
    pub(crate) sel_len: Vec<u32>,
    /// `levelled_contraction`: liveness mask.
    pub(crate) alive: Vec<bool>,
    /// `levelled_contraction`: contractibility mask.
    pub(crate) mark: Vec<bool>,
    /// `extract_subforest`: old-id → new-id mapping (sentinel = unmapped).
    pub(crate) new_id: Vec<NodeId>,
}

/// Sentinel for "no new id assigned" in [`Workspace::new_id`].
pub(crate) const UNMAPPED: NodeId = NodeId(usize::MAX);

impl Workspace {
    /// A workspace with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fills [`Self::order`] with the forest's top-down order
    /// (equivalent to [`Forest::top_down_order`], without allocating).
    pub(crate) fn fill_top_down(&mut self, forest: &Forest) {
        self.order.clear();
        self.order.reserve(forest.len());
        self.stack.clear();
        self.stack.extend(forest.roots().iter().rev().copied());
        while let Some(u) = self.stack.pop() {
            self.order.push(u);
            self.stack.extend(forest.children(u).iter().rev().copied());
        }
        debug_assert_eq!(self.order.len(), forest.len());
    }

    /// Total bytes currently reserved by the scratch buffers (capacity,
    /// not length) — reported via the `engine.ws.scratch_bytes` obs event.
    pub fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        self.order.capacity() * size_of::<NodeId>()
            + self.stack.capacity() * size_of::<NodeId>()
            + self.child_t.capacity() * size_of::<(Value, NodeId)>()
            + self.sel.capacity() * size_of::<NodeId>()
            + self.sel_len.capacity() * size_of::<u32>()
            + self.alive.capacity()
            + self.mark.capacity()
            + self.new_id.capacity() * size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_top_down_matches_allocating_version() {
        let mut f = Forest::new();
        let r = f.add_root(1.0);
        let a = f.add_child(r, 1.0);
        f.add_child(r, 1.0);
        f.add_child(a, 1.0);
        let r2 = f.add_root(1.0);
        f.add_child(r2, 1.0);
        let mut ws = Workspace::new();
        ws.fill_top_down(&f);
        assert_eq!(ws.order, f.top_down_order());
    }

    #[test]
    fn scratch_bytes_grows_with_use() {
        let mut f = Forest::new();
        let r = f.add_root(1.0);
        for _ in 0..64 {
            f.add_child(r, 1.0);
        }
        let mut ws = Workspace::new();
        assert_eq!(ws.scratch_bytes(), 0);
        ws.fill_top_down(&f);
        assert!(ws.scratch_bytes() > 0);
    }
}

/// Differential tests: the workspace paths must be bit-identical to the
/// pre-workspace reference implementations on arbitrary forests, including
/// when one workspace is reused across unrelated calls.
#[cfg(test)]
mod diff_tests {
    use super::*;
    use crate::contraction::levelled_contraction_ws;
    use crate::extract::{extract_subforest, extract_subforest_ws};
    use crate::tm::{tm_reference, tm_ws};
    use proptest::prelude::*;

    /// Random forest: each node's parent is a previously created node or
    /// none, values in 1..=100 (same shape as `tests/prop_kbas.rs`).
    fn arb_forest(max_n: usize) -> impl Strategy<Value = Forest> {
        proptest::collection::vec((1u32..=100, 0usize..=usize::MAX), 1..=max_n).prop_map(|spec| {
            let mut values = Vec::with_capacity(spec.len());
            let mut parents = Vec::with_capacity(spec.len());
            for (i, (v, p)) in spec.into_iter().enumerate() {
                values.push(v as f64);
                if i == 0 {
                    parents.push(None);
                } else {
                    let q = p % (i + 1);
                    parents.push((q < i).then_some(q));
                }
            }
            Forest::from_parents(values, parents)
        })
    }

    proptest! {
        #[test]
        fn tm_ws_matches_reference(f in arb_forest(60), k in 0u32..5) {
            let mut ws = Workspace::new();
            let a = tm_reference(&f, k);
            let b = tm_ws(&f, k, &mut ws);
            prop_assert_eq!(a.value, b.value);
            prop_assert_eq!(a.classes, b.classes);
            prop_assert_eq!(a.keep, b.keep);
            prop_assert_eq!(a.t, b.t);
            prop_assert_eq!(a.m, b.m);
        }

        #[test]
        fn workspace_reuse_does_not_leak_state(
            f1 in arb_forest(60),
            f2 in arb_forest(60),
            k in 0u32..5,
        ) {
            // Run on f1 first, then f2 with the same (dirty) workspace: the
            // f2 result must match a fresh-workspace run.
            let mut ws = Workspace::new();
            let _ = tm_ws(&f1, k, &mut ws);
            let _ = levelled_contraction_ws(&f1, k, &mut ws);
            let dirty = tm_ws(&f2, k, &mut ws);
            let fresh = tm_ws(&f2, k, &mut Workspace::new());
            prop_assert_eq!(dirty.value, fresh.value);
            prop_assert_eq!(&dirty.keep, &fresh.keep);
            let dirty_lc = levelled_contraction_ws(&f2, k, &mut ws);
            let fresh_lc = levelled_contraction_ws(&f2, k, &mut Workspace::new());
            prop_assert_eq!(dirty_lc.value(), fresh_lc.value());
            prop_assert_eq!(dirty_lc.best, fresh_lc.best);
            let (sub_d, back_d) = extract_subforest_ws(&f2, &dirty.keep, &mut ws);
            let (sub_f, back_f) = extract_subforest(&f2, &fresh.keep);
            prop_assert_eq!(sub_d, sub_f);
            prop_assert_eq!(back_d, back_f);
        }
    }
}
