//! # pobp-forest — Bounded-Degree Ancestor-Independent Sub-Forests (§3)
//!
//! The combinatorial core of *The Price of Bounded Preemption*: given a
//! node-valued forest, find the maximum-value sub-forest whose components
//! are ancestor-independent and whose nodes keep at most `k` children — the
//! *k-BAS* of Definition 3.2. The bounded-preemption scheduling problem
//! reduces to k-BAS on the *schedule forest* (see `pobp-sched`).
//!
//! * [`Forest`] — index-arena rose forests with iterative traversals;
//! * [`tm`] — the optimal dynamic program of §3.2 (procedure `TM`);
//! * [`levelled_contraction`] — Algorithm 1, the `log_{k+1} n` loss-factor
//!   witness of Theorem 3.9 and our ablation baseline;
//! * [`brute_force_kbas`] — exponential oracle for testing;
//! * [`LowerBoundTree`] — the Appendix A adversarial instance showing the
//!   loss factor is tight (Theorem 3.20).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod bruteforce;
mod contraction;
mod extract;
mod kbas;
mod lowerbound;
mod tm;
mod workspace;

pub use arena::{Forest, NodeId};
pub use bruteforce::{brute_force_kbas, BRUTE_FORCE_LIMIT};
pub use contraction::{levelled_contraction, levelled_contraction_ws, ContractionResult, Level};
pub use extract::{extract_subforest, extract_subforest_ws, greedy_kbas};
pub use kbas::{
    classes_consistent, is_ancestor_independent, is_k_bounded, is_kbas, keep_from_classes,
    KeepSet, NodeClass,
};
pub use lowerbound::{root_of, LowerBoundTree};
pub use tm::{loss_bound, tm, tm_ws, TmResult};
pub use workspace::Workspace;
