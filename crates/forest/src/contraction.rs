//! Algorithm 1: `MaxContract` + `LevelledContraction` (§3.3).
//!
//! `LevelledContraction` is the analysis vehicle of Theorem 3.9: it
//! partitions the forest into at most `log_{k+1} n` *levels*, each of which
//! is itself a valid k-BAS (Lemma 3.16), and returns the level of maximal
//! value — hence a value of at least `val(T) / log_{k+1} n` (Lemma 3.17 +
//! 3.18). We expose the full level decomposition so the experiments can
//! check the iteration count and the per-level values, and use the algorithm
//! as an ablation baseline against the optimal `TM`.
//!
//! Implementation note: instead of physically contracting nodes we mark
//! subtrees *dead level by level*. At each iteration, a live node is
//! `k`-contractible (Definition 3.10) iff it has at most `k` live children
//! and all of them are contractible; the iteration's level set `S_i` is the
//! collection of *maximal* contractible subtrees, exactly the leaves that
//! would remain after `MaxContract` physically merged them.

use crate::arena::{Forest, NodeId};
use crate::kbas::KeepSet;
use crate::workspace::Workspace;
use pobp_core::{obs_count, Value};

/// One iteration's output: a k-BAS of the original forest (Lemma 3.16).
#[derive(Clone, Debug)]
pub struct Level {
    /// Roots of the contracted subtrees (the leaves `S_i` of Algorithm 1,
    /// before contraction is undone).
    pub roots: Vec<NodeId>,
    /// All nodes of the level's k-BAS (the contracted subtrees `T_i`).
    pub members: Vec<NodeId>,
    /// Total value of the level (`val(S_i) = val(T_i)`, Observation 3.12).
    pub value: Value,
}

/// Output of `LevelledContraction`.
#[derive(Clone, Debug)]
pub struct ContractionResult {
    /// The level decomposition; levels partition the node set.
    pub levels: Vec<Level>,
    /// Index of the best level (`argmax val(S)` of Algorithm 1, line 19).
    pub best: usize,
}

impl ContractionResult {
    /// The value returned by the algorithm.
    pub fn value(&self) -> Value {
        self.levels[self.best].value
    }

    /// The keep-set of the returned k-BAS.
    pub fn keep(&self, forest: &Forest) -> KeepSet {
        KeepSet::from_ids(forest.len(), &self.levels[self.best].members)
    }

    /// Number of iterations `L` (Lemma 3.18 bounds it by `log_{k+1} n`).
    pub fn iterations(&self) -> usize {
        self.levels.len()
    }
}

/// Runs `LevelledContraction` on `forest` with degree bound `k`.
///
/// ```
/// use pobp_forest::{levelled_contraction, Forest};
///
/// let mut f = Forest::new();
/// let r = f.add_root(1.0);
/// for _ in 0..4 { f.add_child(r, 1.0); }
///
/// // k = 1: the leaves contract in iteration 1, the center in iteration 2.
/// let res = levelled_contraction(&f, 1);
/// assert_eq!(res.iterations(), 2);
/// assert_eq!(res.value(), 4.0); // the leaf level wins
/// // Lemma 3.17: best level ≥ total / iterations.
/// assert!(res.value() * res.iterations() as f64 >= f.total_value());
/// ```
///
/// # Panics
/// Panics on an empty forest (the paper's algorithm loops `while T ≠ ∅`; an
/// empty input has no well-defined best level).
pub fn levelled_contraction(forest: &Forest, k: u32) -> ContractionResult {
    levelled_contraction_ws(forest, k, &mut Workspace::new())
}

/// [`levelled_contraction`] with caller-provided scratch memory.
///
/// Identical output; the traversal order, liveness/contractibility masks
/// and DFS stack come from `ws` so steady-state calls allocate only the
/// [`ContractionResult`] itself.
///
/// # Panics
/// Panics on an empty forest, like [`levelled_contraction`].
pub fn levelled_contraction_ws(forest: &Forest, k: u32, ws: &mut Workspace) -> ContractionResult {
    assert!(!forest.is_empty(), "levelled_contraction needs a non-empty forest");
    obs_count!("forest.contraction.runs");
    let n = forest.len();
    let k = k as usize;
    ws.fill_top_down(forest);
    let mut alive_count = n;
    let mut levels = Vec::new();

    // Per-iteration scratch, reused: `alive` + `mark` (contractibility).
    ws.alive.clear();
    ws.alive.resize(n, true);
    ws.mark.clear();
    ws.mark.resize(n, false);

    while alive_count > 0 {
        obs_count!("forest.contraction.levels");
        // MaxContract: mark contractibility bottom-up over live nodes.
        for i in (0..n).rev() {
            let u = ws.order[i];
            obs_count!("forest.contraction.node_scans");
            if !ws.alive[u.0] {
                continue;
            }
            let mut lc = 0usize;
            let mut lcc = 0usize;
            for &c in forest.children(u) {
                if ws.alive[c.0] {
                    lc += 1;
                    if ws.mark[c.0] {
                        lcc += 1;
                    }
                }
            }
            ws.mark[u.0] = lc <= k && lcc == lc;
        }
        // The level's roots: contractible nodes that are maximal — their
        // parent is dead, absent, or not contractible. These are exactly
        // the leaves of the tree after MaxContract.
        let mut roots = Vec::new();
        for i in (0..n).rev() {
            let u = ws.order[i];
            if !ws.alive[u.0] || !ws.mark[u.0] {
                continue;
            }
            let is_max = match forest.parent(u) {
                None => true,
                Some(p) => !ws.alive[p.0] || !ws.mark[p.0],
            };
            if is_max {
                roots.push(u);
            }
        }
        debug_assert!(
            !roots.is_empty(),
            "every live forest has at least one contractible leaf"
        );
        // Collect the members (the contracted subtrees) and kill them.
        let mut members = Vec::new();
        let mut value = 0.0f64;
        ws.stack.clear();
        ws.stack.extend_from_slice(&roots);
        while let Some(u) = ws.stack.pop() {
            debug_assert!(ws.alive[u.0]);
            obs_count!("forest.contraction.contracted_nodes");
            ws.alive[u.0] = false;
            alive_count -= 1;
            members.push(u);
            value += forest.value(u);
            for &c in forest.children(u) {
                if ws.alive[c.0] {
                    ws.stack.push(c);
                }
            }
        }
        levels.push(Level { roots, members, value });
    }

    let best = levels
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.value.partial_cmp(&b.1.value).expect("finite values"))
        .map(|(i, _)| i)
        .expect("at least one level");
    ContractionResult { levels, best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kbas::is_kbas;

    #[test]
    fn single_node_is_one_level() {
        let mut f = Forest::new();
        let r = f.add_root(5.0);
        let res = levelled_contraction(&f, 1);
        assert_eq!(res.iterations(), 1);
        assert_eq!(res.value(), 5.0);
        assert_eq!(res.levels[0].roots, vec![r]);
    }

    #[test]
    fn path_contracts_in_one_iteration() {
        // A path is 1-contractible end to end.
        let mut f = Forest::new();
        let mut cur = f.add_root(1.0);
        for _ in 0..9 {
            cur = f.add_child(cur, 1.0);
        }
        let res = levelled_contraction(&f, 1);
        assert_eq!(res.iterations(), 1);
        assert_eq!(res.value(), 10.0);
        assert_eq!(res.levels[0].members.len(), 10);
    }

    #[test]
    fn binary_tree_with_k1_needs_log_levels() {
        // Complete binary tree of depth 3 (15 nodes), unit values, k = 1:
        // no internal node is 1-contractible (degree 2), so iteration i
        // strips one level of leaves... after leaves (8) are taken, the old
        // internal nodes become leaves, etc. → 4 levels, sizes 8,4,2,1.
        let mut f = Forest::new();
        let r = f.add_root(1.0);
        let mut frontier = vec![r];
        for _ in 0..3 {
            let mut next = Vec::new();
            for u in frontier {
                next.push(f.add_child(u, 1.0));
                next.push(f.add_child(u, 1.0));
            }
            frontier = next;
        }
        let res = levelled_contraction(&f, 1);
        assert_eq!(res.iterations(), 4);
        let sizes: Vec<usize> = res.levels.iter().map(|l| l.members.len()).collect();
        assert_eq!(sizes, vec![8, 4, 2, 1]);
        assert_eq!(res.value(), 8.0);
        // Iteration bound of Lemma 3.18: L ≤ log_{k+1} n (+1 rounding).
        assert!(res.iterations() as f64 <= (15.0f64).log2().ceil());
    }

    #[test]
    fn binary_tree_with_k2_contracts_at_once() {
        let mut f = Forest::new();
        let r = f.add_root(1.0);
        for _ in 0..2 {
            let a = f.add_child(r, 1.0);
            f.add_child(a, 1.0);
            f.add_child(a, 1.0);
        }
        let res = levelled_contraction(&f, 2);
        assert_eq!(res.iterations(), 1);
        assert_eq!(res.value(), 7.0);
    }

    #[test]
    fn levels_partition_nodes_and_are_kbas() {
        // Irregular forest.
        let mut f = Forest::new();
        let r = f.add_root(3.0);
        let a = f.add_child(r, 1.0);
        let b = f.add_child(r, 2.0);
        let c = f.add_child(r, 7.0);
        f.add_child(a, 1.0);
        f.add_child(a, 4.0);
        f.add_child(a, 4.0);
        f.add_child(b, 5.0);
        let d = f.add_child(c, 1.0);
        f.add_child(d, 9.0);
        let r2 = f.add_root(2.0);
        f.add_child(r2, 2.0);

        for k in 1..4 {
            let res = levelled_contraction(&f, k);
            let mut seen = vec![false; f.len()];
            let mut total = 0.0;
            for lvl in &res.levels {
                let ks = KeepSet::from_ids(f.len(), &lvl.members);
                assert!(is_kbas(&f, &ks, k), "level not a k-BAS for k={k}");
                assert_eq!(ks.value(&f), lvl.value);
                for m in &lvl.members {
                    assert!(!seen[m.0], "node in two levels");
                    seen[m.0] = true;
                }
                total += lvl.value;
            }
            assert!(seen.iter().all(|&s| s), "levels must partition the forest");
            assert_eq!(total, f.total_value());
            // Loss bound: best level ≥ total / L.
            assert!(res.value() * res.iterations() as f64 >= f.total_value() - 1e-9);
        }
    }

    #[test]
    fn star_with_k1() {
        // Star with 6 leaves, unit values: iteration 1 takes all leaves
        // (each leaf is contractible, the center has degree 6 > 1);
        // iteration 2 takes the center.
        let mut f = Forest::new();
        let r = f.add_root(1.0);
        for _ in 0..6 {
            f.add_child(r, 1.0);
        }
        let res = levelled_contraction(&f, 1);
        assert_eq!(res.iterations(), 2);
        assert_eq!(res.levels[0].members.len(), 6);
        assert_eq!(res.levels[1].roots, vec![r]);
        assert_eq!(res.value(), 6.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_forest_panics() {
        let _ = levelled_contraction(&Forest::new(), 1);
    }
}
