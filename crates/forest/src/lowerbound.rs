//! The Appendix A adversarial tree: the `Ω(log_{k+1} n)` loss-factor lower
//! bound for k-BAS (Theorem 3.20, Figure 3).
//!
//! The construction: `L + 1` levels numbered `0..=L`; level `i` holds `K^i`
//! nodes, each of value `K^{-i}`, and every non-leaf node has exactly `K`
//! children. The paper sets `K = 2k`, so that
//!
//! * the total value is `L + 1` (one unit per level, Observation A.1), while
//! * `TM` extracts only `t(root) = Σ_{j=0}^{L} (k/K)^j < K/(K-k) = 2`
//!   (Lemma A.2 / Corollary A.3).
//!
//! We scale all values by `K^L` so they are exact integers in `f64`
//! (level-`i` nodes get `K^{L-i}`); ratios are unchanged.

use crate::arena::{Forest, NodeId};
use pobp_core::Value;

/// Parameters of the Appendix A tree.
#[derive(Clone, Copy, Debug)]
pub struct LowerBoundTree {
    /// Branching factor `K` (> k in the paper; `K = 2k` for the theorem).
    pub branching: u32,
    /// Number of levels is `depth + 1` (`L` in the paper).
    pub depth: u32,
}

impl LowerBoundTree {
    /// The paper's parameterization for bound `k`: `K = 2k`.
    pub fn for_k(k: u32, depth: u32) -> Self {
        assert!(k >= 1, "the construction needs k ≥ 1");
        LowerBoundTree { branching: 2 * k, depth }
    }

    /// Number of nodes `n = (K^{L+1} - 1) / (K - 1)`.
    pub fn node_count(&self) -> usize {
        let k = self.branching as usize;
        if k == 1 {
            return self.depth as usize + 1;
        }
        (k.pow(self.depth + 1) - 1) / (k - 1)
    }

    /// Builds the tree. Values are scaled by `K^L`: a level-`i` node has
    /// value `K^(L - i)`.
    ///
    /// # Panics
    /// Panics if the scaled values would lose integer precision in `f64`
    /// (`K^L ≥ 2^53`) or the node count overflows memory sanity (> 2^28).
    pub fn build(&self) -> Forest {
        let kf = self.branching as f64;
        let scale = kf.powi(self.depth as i32);
        assert!(
            scale < 2f64.powi(53),
            "K^L = {scale} exceeds exact f64 integer range"
        );
        assert!(self.node_count() < 1 << 28, "tree too large");
        let mut f = Forest::new();
        let root = f.add_root(scale);
        let mut frontier = vec![root];
        let mut value = scale;
        for _ in 0..self.depth {
            value /= kf;
            let mut next = Vec::with_capacity(frontier.len() * self.branching as usize);
            for u in frontier {
                for _ in 0..self.branching {
                    next.push(f.add_child(u, value));
                }
            }
            frontier = next;
        }
        f
    }

    /// The total tree value `(L + 1) · K^L` (Observation A.1, scaled).
    pub fn total_value(&self) -> Value {
        (self.depth as f64 + 1.0) * (self.branching as f64).powi(self.depth as i32)
    }

    /// The closed form of Lemma A.2 for `t(root)` under bound `k`, scaled:
    /// `K^L · Σ_{j=0}^{L} (k/K)^j`.
    pub fn expected_tm_value(&self, k: u32) -> Value {
        let kf = self.branching as f64;
        let scale = kf.powi(self.depth as i32);
        let q = k as f64 / kf;
        let sum: f64 = (0..=self.depth).map(|j| q.powi(j as i32)).sum();
        scale * sum
    }

    /// The loss ratio `OPT_∞ / ALG` the construction forces (Corollary A.3):
    /// `(L+1) / Σ (k/K)^j` — with `K = 2k` this is `> (L+1)/2 = Ω(log_{k+1} n)`.
    pub fn expected_loss(&self, k: u32) -> f64 {
        self.total_value() / self.expected_tm_value(k)
    }
}

/// Root of the built tree (always the first node).
pub fn root_of(forest: &Forest) -> NodeId {
    forest.roots()[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tm::tm;

    #[test]
    fn shape_and_counts() {
        let lb = LowerBoundTree { branching: 3, depth: 2 };
        assert_eq!(lb.node_count(), 13); // 1 + 3 + 9
        let f = lb.build();
        assert_eq!(f.len(), 13);
        assert_eq!(f.degree(root_of(&f)), 3);
        assert_eq!(f.leaf_count(), 9);
        // Scaled values: root 9, middle 3, leaves 1.
        assert_eq!(f.value(root_of(&f)), 9.0);
        assert_eq!(f.total_value(), lb.total_value());
        assert_eq!(lb.total_value(), 27.0); // 3 levels × 9
    }

    #[test]
    fn lemma_a2_closed_form_matches_tm() {
        // Verify the DP reproduces the closed form for several (k, L).
        for k in 1..=3u32 {
            for depth in 1..=4u32 {
                let lb = LowerBoundTree::for_k(k, depth);
                let f = lb.build();
                let res = tm(&f, k);
                let expect = lb.expected_tm_value(k);
                let rel = (res.value - expect).abs() / expect;
                assert!(rel < 1e-12, "k={k} L={depth}: got {} want {expect}", res.value);
            }
        }
    }

    #[test]
    fn corollary_a3_bound() {
        // ALG < K/(K-k) × scale = 2 × K^L for K = 2k.
        let lb = LowerBoundTree::for_k(2, 5);
        let f = lb.build();
        let res = tm(&f, 2);
        let scale = 4f64.powi(5);
        assert!(res.value < 2.0 * scale);
        // Loss grows linearly in L: OPT/ALG > (L+1)/2.
        let loss = f.total_value() / res.value;
        assert!(loss > (5.0 + 1.0) / 2.0);
    }

    #[test]
    fn k1_uses_k_equals_2() {
        let lb = LowerBoundTree::for_k(1, 3);
        assert_eq!(lb.branching, 2);
        assert_eq!(lb.node_count(), 15);
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn k_zero_rejected() {
        let _ = LowerBoundTree::for_k(0, 3);
    }
}
