//! Property tests for the k-BAS algorithms: TM optimality vs brute force,
//! structural validity, and the Theorem 3.9 loss bound.

use pobp_forest::{
    brute_force_kbas, classes_consistent, is_kbas, levelled_contraction, loss_bound, tm, Forest,
};
use proptest::prelude::*;

/// Random forest strategy: values in 1..=100, each node's parent is a
/// previously created node or none (Prüfer-ish incremental attachment).
fn arb_forest(max_nodes: usize) -> impl Strategy<Value = Forest> {
    proptest::collection::vec((1u32..=100, 0usize..=usize::MAX), 1..=max_nodes).prop_map(
        |spec| {
            let mut values = Vec::with_capacity(spec.len());
            let mut parents = Vec::with_capacity(spec.len());
            for (i, (v, p)) in spec.into_iter().enumerate() {
                values.push(v as f64);
                if i == 0 {
                    parents.push(None);
                } else {
                    // p % (i+1): index i means "be a root".
                    let q = p % (i + 1);
                    parents.push((q < i).then_some(q));
                }
            }
            Forest::from_parents(values, parents)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tm_matches_brute_force(f in arb_forest(12), k in 0u32..4) {
        let (bf_value, bf_keep) = brute_force_kbas(&f, k);
        let res = tm(&f, k);
        prop_assert!(is_kbas(&f, &bf_keep, k));
        prop_assert!((res.value - bf_value).abs() < 1e-9,
            "TM={} BF={} k={k} forest={f:?}", res.value, bf_value);
    }

    #[test]
    fn tm_output_is_valid(f in arb_forest(40), k in 0u32..5) {
        let res = tm(&f, k);
        prop_assert!(is_kbas(&f, &res.keep, k));
        prop_assert!(classes_consistent(&f, &res.classes));
        // Reported value equals the kept value.
        prop_assert!((res.keep.value(&f) - res.value).abs() < 1e-9);
        // t(u) ≥ val(u) and m(leaf) = 0.
        for u in f.ids() {
            prop_assert!(res.t[u.0] >= f.value(u) - 1e-9);
            if f.is_leaf(u) {
                prop_assert_eq!(res.m[u.0], 0.0);
            }
        }
    }

    #[test]
    fn tm_respects_theorem_3_9(f in arb_forest(60), k in 1u32..5) {
        // val(TM) ≥ val(T) / log_{k+1} n  (Theorem 3.9; bound ≥ 1).
        let res = tm(&f, k);
        let bound = loss_bound(f.len(), k).max(1.0);
        prop_assert!(
            res.value * bound >= f.total_value() - 1e-6,
            "value={} total={} bound={bound}", res.value, f.total_value()
        );
    }

    #[test]
    fn contraction_levels_partition_and_are_kbas(f in arb_forest(50), k in 1u32..5) {
        let res = levelled_contraction(&f, k);
        let mut seen = vec![false; f.len()];
        let mut total = 0.0;
        for lvl in &res.levels {
            let ks = pobp_forest::KeepSet::from_ids(f.len(), &lvl.members);
            prop_assert!(is_kbas(&f, &ks, k));
            for m in &lvl.members {
                prop_assert!(!seen[m.0]);
                seen[m.0] = true;
            }
            total += lvl.value;
        }
        prop_assert!(seen.iter().all(|&b| b));
        prop_assert!((total - f.total_value()).abs() < 1e-6);
    }

    #[test]
    fn contraction_iteration_bound_lemma_3_18(f in arb_forest(80), k in 1u32..5) {
        // L ≤ log_{k+1} n + 1 (the paper's ≤ log_{k+1} n, with rounding slack
        // for tiny n where (k+1)^(L-1) - 1 bounds bite).
        let res = levelled_contraction(&f, k);
        let n = f.len() as f64;
        let bound = (n.ln() / ((k + 1) as f64).ln()).floor() + 1.0;
        prop_assert!(
            (res.iterations() as f64) <= bound + 1e-9,
            "L={} n={} k={k}", res.iterations(), f.len()
        );
    }

    #[test]
    fn tm_dominates_contraction(f in arb_forest(50), k in 1u32..5) {
        // TM is optimal, so it can never lose to LevelledContraction.
        let res = tm(&f, k);
        let lc = levelled_contraction(&f, k);
        prop_assert!(res.value >= lc.value() - 1e-9);
        // And LC obeys its own Lemma 3.17 bound: best level ≥ total / L.
        prop_assert!(lc.value() * lc.iterations() as f64 >= f.total_value() - 1e-6);
    }

    #[test]
    fn tm_monotone_in_k(f in arb_forest(40)) {
        // More preemptions can only help.
        let mut prev = 0.0;
        for k in 0..6 {
            let v = tm(&f, k).value;
            prop_assert!(v >= prev - 1e-9, "k={k}: {v} < {prev}");
            prev = v;
        }
        // For k ≥ max degree, everything is kept.
        let kmax = f.max_degree() as u32;
        prop_assert!((tm(&f, kmax).value - f.total_value()).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn extracted_subforest_preserves_structure(f in arb_forest(30), k in 0u32..4) {
        let res = tm(&f, k);
        let (sub, back) = pobp_forest::extract_subforest(&f, &res.keep);
        // Same node count and value as the keep-set.
        prop_assert_eq!(sub.len(), res.keep.len());
        prop_assert!((sub.total_value() - res.value).abs() < 1e-9);
        // Degree bound carries over to the extracted forest.
        prop_assert!(sub.max_degree() <= k as usize);
        // Back-mapping is injective into kept nodes with matching values.
        let mut seen = std::collections::HashSet::new();
        for (i, &orig) in back.iter().enumerate() {
            prop_assert!(res.keep.contains(orig));
            prop_assert!(seen.insert(orig));
            prop_assert_eq!(sub.value(pobp_forest::NodeId(i)), f.value(orig));
        }
        // Parent edges in the extraction correspond to kept parent edges.
        for u in sub.ids() {
            if let Some(p) = sub.parent(u) {
                prop_assert_eq!(f.parent(back[u.0]), Some(back[p.0]));
            }
        }
    }

    #[test]
    fn greedy_kbas_valid_and_dominated(f in arb_forest(16), k in 0u32..3) {
        let (gv, gk) = pobp_forest::greedy_kbas(&f, k);
        prop_assert!(is_kbas(&f, &gk, k));
        prop_assert!((gv - gk.value(&f)).abs() < 1e-12);
        let opt = tm(&f, k);
        prop_assert!(opt.value >= gv - 1e-9);
        // Greedy always keeps at least the single most valuable node.
        let best = f.ids().map(|u| f.value(u)).fold(0.0f64, f64::max);
        prop_assert!(gv >= best - 1e-12);
    }
}
