//! Edge-case suite for the k-BAS machinery: degenerate shapes, tie-breaks,
//! determinism, extreme degrees.

use pobp_forest::*;

#[test]
fn forest_of_isolated_nodes() {
    // n roots, no edges: everything is a k-BAS for every k.
    let mut f = Forest::new();
    for i in 0..10 {
        f.add_root((i + 1) as f64);
    }
    for k in 0..3u32 {
        let res = tm(&f, k);
        assert_eq!(res.value, f.total_value(), "k={k}");
        assert_eq!(res.keep.len(), 10);
        let lc = levelled_contraction(&f, k.max(1));
        assert_eq!(lc.iterations(), 1);
        assert_eq!(lc.value(), f.total_value());
    }
}

#[test]
fn tm_deterministic_on_equal_children() {
    // Star with equal-valued leaves: the top-k selection must be stable
    // across runs (same keep set every time).
    let mut f = Forest::new();
    let r = f.add_root(100.0); // valuable center: retaining beats pruning up
    for _ in 0..6 {
        f.add_child(r, 5.0);
    }
    let a = tm(&f, 3);
    let b = tm(&f, 3);
    assert_eq!(a.keep.mask(), b.keep.mask());
    assert_eq!(a.value, b.value);
    assert_eq!(a.value, 115.0);
    assert_eq!(a.keep.len(), 4); // root + 3 of the 6 equal leaves
}

#[test]
fn wide_star_many_children() {
    let mut f = Forest::new();
    let r = f.add_root(1.0);
    for i in 0..10_000 {
        f.add_child(r, 1.0 + (i % 7) as f64);
    }
    let res = tm(&f, 100);
    assert!(is_kbas(&f, &res.keep, 100));
    // Pruning the cheap center up and keeping all children beats keeping
    // the center with its best 100.
    assert_eq!(res.classes[r.0], NodeClass::PrunedUp);
    assert_eq!(res.keep.len(), 10_000);
}

#[test]
fn contraction_on_wide_star_takes_two_levels() {
    let mut f = Forest::new();
    let r = f.add_root(1000.0);
    for _ in 0..50 {
        f.add_child(r, 1.0);
    }
    let lc = levelled_contraction(&f, 3);
    assert_eq!(lc.iterations(), 2);
    // Level 0 = the 50 leaves (value 50); level 1 = the heavy center.
    assert_eq!(lc.levels[0].value, 50.0);
    assert_eq!(lc.levels[1].value, 1000.0);
    assert_eq!(lc.best, 1);
}

#[test]
fn keepset_boundaries() {
    let mut f = Forest::new();
    let r = f.add_root(1.0);
    let c = f.add_child(r, 2.0);
    // Full keep, empty keep, each singleton.
    assert!(is_kbas(&f, &KeepSet::from_mask(vec![true, true]), 1));
    assert!(is_kbas(&f, &KeepSet::empty(2), 0));
    assert!(is_kbas(&f, &KeepSet::from_ids(2, &[r]), 0));
    assert!(is_kbas(&f, &KeepSet::from_ids(2, &[c]), 0));
    // Parent + child at k = 0 violates the degree bound.
    assert!(!is_kbas(&f, &KeepSet::from_mask(vec![true, true]), 0));
}

#[test]
fn extraction_of_full_and_empty() {
    let mut f = Forest::new();
    let r = f.add_root(3.0);
    f.add_child(r, 4.0);
    let (full, back) = extract_subforest(&f, &KeepSet::from_mask(vec![true, true]));
    assert_eq!(full.len(), 2);
    assert_eq!(back.len(), 2);
    assert_eq!(full.total_value(), 7.0);
    let (empty, _) = extract_subforest(&f, &KeepSet::empty(2));
    assert!(empty.is_empty());
}

#[test]
fn brute_force_handles_all_k_on_path() {
    let mut f = Forest::new();
    let mut cur = f.add_root(1.0);
    for i in 0..5 {
        cur = f.add_child(cur, (i + 2) as f64);
    }
    for k in 0..3u32 {
        let (bf, keep) = brute_force_kbas(&f, k);
        assert!(is_kbas(&f, &keep, k));
        let dp = tm(&f, k);
        assert_eq!(bf, dp.value, "k={k}");
    }
    // k ≥ 1 keeps the whole path.
    assert_eq!(tm(&f, 1).value, f.total_value());
}

#[test]
fn lower_bound_tree_depth_zero() {
    let lb = LowerBoundTree { branching: 4, depth: 0 };
    assert_eq!(lb.node_count(), 1);
    let f = lb.build();
    assert_eq!(f.len(), 1);
    assert_eq!(tm(&f, 1).value, f.total_value());
    assert_eq!(lb.expected_loss(1), 1.0);
}

#[test]
fn greedy_kbas_on_isolated_nodes_is_optimal() {
    let mut f = Forest::new();
    for i in 0..8 {
        f.add_root((i + 1) as f64);
    }
    let (gv, _) = greedy_kbas(&f, 0);
    assert_eq!(gv, f.total_value());
}

#[test]
fn loss_bound_monotone() {
    // Larger n → larger bound; larger k → smaller bound.
    for k in 1..5u32 {
        assert!(loss_bound(100, k) <= loss_bound(1000, k));
        assert!(loss_bound(1000, k + 1) <= loss_bound(1000, k));
    }
}
