//! Quickstart: schedule a handful of jobs with a preemption budget.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline of the paper on a small instance: exact `OPT_∞`,
//! the §4.1 reduction to a k-bounded schedule, and the measured price of
//! bounding preemption.

use pobp::prelude::*;

fn main() {
    // A small mixed workload: ⟨release, deadline, length, value⟩.
    let jobs: JobSet = vec![
        Job::new(0, 40, 25, 10.0), // long, fairly strict
        Job::new(3, 12, 5, 4.0),   // short, must run early
        Job::new(14, 22, 4, 3.0),  // short, mid-horizon
        Job::new(26, 36, 5, 3.0),  // short, late
        Job::new(0, 200, 8, 5.0),  // very lax
        Job::new(10, 90, 6, 2.0),  // lax
    ]
    .into_iter()
    .collect();
    let ids: Vec<JobId> = jobs.ids().collect();
    println!("{} jobs, total value {}", jobs.len(), jobs.total_value());
    println!("length ratio P = {:.1}", jobs.length_ratio().unwrap());

    // Exact OPT_∞ (branch-and-bound + EDF): the competitor that may preempt
    // freely.
    let opt = opt_unbounded(&jobs, &ids);
    println!("\nOPT_∞ = {} (schedules {:?})", opt.value, opt.subset);
    let max_preemptions = opt.schedule.max_preemptions();
    println!("  EDF witness uses up to {max_preemptions} preemptions per job");

    // Bound the preemptions: reduce the optimal schedule to k-bounded form.
    println!("\n k | value | price OPT_∞/val | segments used");
    println!("---+-------+-----------------+--------------");
    for k in 0..4u32 {
        let red = reduce_to_k_bounded(&jobs, &opt.schedule, k).expect("feasible input");
        red.schedule
            .verify(&jobs, Some(k))
            .expect("reduction output must be k-feasible");
        let value = red.schedule.value(&jobs);
        let worst_segments = red
            .schedule
            .scheduled_ids()
            .map(|j| red.schedule.preemptions(j) + 1)
            .max()
            .unwrap_or(0);
        println!(
            " {k} | {value:5} | {:15.3} | ≤ {worst_segments}",
            opt.value / value
        );
    }

    // Algorithm 3 (laxity split) run end to end from scratch.
    let k = 1;
    let combined = combined_from_scratch(&jobs, &ids, k);
    println!(
        "\nAlgorithm 3 (k = {k}): strict branch {}, lax branch {}, chosen {}",
        combined.strict.value(&jobs),
        combined.lax.value(&jobs),
        combined.chosen.value(&jobs),
    );

    // And the k = 0 special case of §5.
    let k0 = schedule_k0(&jobs, &ids);
    println!("§5 non-preemptive algorithm: value {}", k0.value(&jobs));
    println!(
        "price at k = 0: {:.3} (bound: min{{n, O(log P)}} = {:.1})",
        opt.value / k0.value(&jobs),
        (jobs.len() as f64).min(3.0 * jobs.length_ratio().unwrap().log2().max(1.0))
    );
}
