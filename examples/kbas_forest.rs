//! The k-BAS problem stand-alone: pruning a valued hierarchy under a degree
//! budget.
//!
//! ```text
//! cargo run --release --example kbas_forest
//! ```
//!
//! k-BAS is interesting beyond scheduling: given any valued hierarchy (a
//! dependency forest, an org chart, a directory tree) where keeping a node
//! means keeping a connected, degree-bounded piece around it, `TM` finds the
//! max-value selection. This example runs `TM` and `LevelledContraction` on
//! random forests and on the adversarial Appendix A tree, comparing optimal
//! value, guaranteed bound, and runtime-relevant sizes.

use pobp::prelude::*;
use std::time::Instant;

fn main() {
    println!("=== random forests: TM (optimal) vs LevelledContraction ===\n");
    println!("      n | k | total value | TM value | LC value | LC levels | bound log_(k+1) n");
    println!("--------+---+-------------+----------+----------+-----------+------------------");
    for &n in &[100usize, 1_000, 10_000, 100_000] {
        for &k in &[1u32, 2, 4] {
            let f = random_forest(n, 0.05, 7 + n as u64);
            let res = tm(&f, k);
            let lc = levelled_contraction(&f, k);
            assert!(is_kbas(&f, &res.keep, k));
            println!(
                "{n:7} | {k} | {:11} | {:8} | {:8} | {:9} | {:6.2}",
                f.total_value(),
                res.value,
                lc.value(),
                lc.iterations(),
                loss_bound(n, k),
            );
            // Optimality sanity: TM ≥ LC always; both within the bound.
            assert!(res.value >= lc.value());
            assert!(res.value * loss_bound(n, k) >= f.total_value() - 1e-6);
        }
    }

    println!("\n=== the adversarial tree (Appendix A): loss really grows ===\n");
    let k = 2;
    println!(" L |      n | loss OPT/TM | closed form");
    println!("---+--------+-------------+------------");
    for depth in 1..=6u32 {
        let lb = LowerBoundTree::for_k(k, depth);
        let f = lb.build();
        let res = tm(&f, k);
        println!(
            " {depth} | {:6} | {:11.3} | {:10.3}",
            lb.node_count(),
            f.total_value() / res.value,
            lb.expected_loss(k),
        );
    }

    println!("\n=== scaling: TM is linear time ===\n");
    for &n in &[100_000usize, 400_000, 1_600_000] {
        let f = random_forest(n, 0.02, 99);
        let t0 = Instant::now();
        let res = tm(&f, 3);
        let dt = t0.elapsed();
        println!(
            "n = {n:8}: TM value {:12} in {:8.1?} ({:.0} nodes/µs)",
            res.value,
            dt,
            n as f64 / dt.as_micros().max(1) as f64
        );
    }
}
