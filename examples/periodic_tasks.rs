//! Bounded preemption on a periodic real-time task set — the workload shape
//! of the limited-preemption literature the paper cites (§1.2, [11,12,27]).
//!
//! ```text
//! cargo run --release --example periodic_tasks
//! ```
//!
//! Builds an overloaded periodic task set (utilization > 1, so value
//! selection matters), unrolls one hyperperiod, and compares the paper's
//! algorithms at several preemption budgets, including execution under
//! context-switch overheads.

use pobp::prelude::*;

fn main() {
    // An overloaded task set: U ≈ 1.27, so some jobs must be rejected.
    let tasks = TaskSet::new(vec![
        // (C, T, D, value, offset)
        PeriodicTask { wcet: 3, period: 10, deadline: 6, value: 6.0, offset: 0 },
        PeriodicTask { wcet: 5, period: 15, deadline: 15, value: 8.0, offset: 2 },
        PeriodicTask { wcet: 8, period: 30, deadline: 25, value: 10.0, offset: 5 },
        PeriodicTask { wcet: 4, period: 12, deadline: 9, value: 5.0, offset: 1 },
        PeriodicTask::implicit(1, 20),
    ]);
    println!(
        "task set: {} tasks, U = {:.2}, hyperperiod = {}",
        tasks.tasks.len(),
        tasks.utilization(),
        tasks.hyperperiod()
    );
    let (jobs, task_of) = tasks.unroll_hyperperiod();
    let ids: Vec<JobId> = jobs.ids().collect();
    println!(
        "unrolled: {} jobs, total value {}\n",
        jobs.len(),
        jobs.total_value()
    );

    let inf = greedy_unbounded(&jobs, &ids);
    println!(
        "∞-preemptive reference (greedy EDF acceptance): value {}, max preemptions {}\n",
        inf.schedule.value(&jobs),
        inf.schedule.max_preemptions()
    );

    println!(" k | reduction | combined | per-task acceptance (reduction)");
    println!("---+-----------+----------+--------------------------------");
    for k in 0..4u32 {
        let red = reduce_to_k_bounded(&jobs, &inf.schedule, k).unwrap();
        red.schedule.verify(&jobs, Some(k)).unwrap();
        let comb = combined_from_scratch(&jobs, &ids, k.max(1));
        // Acceptance rate per task.
        let mut per_task = vec![(0usize, 0usize); tasks.tasks.len()];
        for (i, &t) in task_of.iter().enumerate() {
            per_task[t].1 += 1;
            if red.schedule.segments(JobId(i)).is_some() {
                per_task[t].0 += 1;
            }
        }
        let rates: Vec<String> = per_task
            .iter()
            .map(|&(acc, tot)| format!("{acc}/{tot}"))
            .collect();
        println!(
            " {k} | {:9} | {:8} | {}",
            red.schedule.value(&jobs),
            comb.chosen.value(&jobs),
            rates.join("  ")
        );
    }

    // Execution under context-switch overheads.
    println!("\nexecution with switch cost δ (online policies):\n");
    println!("  δ | EDF value | budget k=1 | budget k=0 | EDF switches | k=1 switches");
    println!("----+-----------+------------+------------+--------------+-------------");
    for delta in [0i64, 1, 2, 4] {
        let edf = execute_online(&jobs, &ids, SimConfig { policy: Policy::Edf, switch_cost: delta });
        let b1 = execute_online(
            &jobs,
            &ids,
            SimConfig { policy: Policy::EdfBudget(1), switch_cost: delta },
        );
        let b0 = execute_online(
            &jobs,
            &ids,
            SimConfig { policy: Policy::EdfBudget(0), switch_cost: delta },
        );
        println!(
            " {delta:2} | {:9} | {:10} | {:10} | {:12} | {:11}",
            edf.value(&jobs),
            b1.value(&jobs),
            b0.value(&jobs),
            edf.trace.switches(),
            b1.trace.switches(),
        );
    }

    // Round-trip the instance through the text format.
    let text = write_jobs(&jobs);
    let back = parse_jobs(&text).expect("own output parses");
    assert_eq!(back.len(), jobs.len());
    println!(
        "\ninstance round-trips through the text format ({} bytes); try:\n  cargo run -q --bin pobp -- gen --kind fig2 --n 6",
        text.len()
    );
}
