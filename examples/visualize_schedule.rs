//! Visualize what bounding preemption does to a schedule.
//!
//! ```text
//! cargo run --release --example visualize_schedule
//! ```
//!
//! Renders ASCII Gantt charts of the same workload scheduled with unbounded
//! preemption (EDF), after the Theorem 4.2 reduction at several `k`, and on
//! the Figure 2 adversarial instance, plus the schedule statistics the
//! paper's motivation cares about (context-switch counts).

use pobp::prelude::*;

fn main() {
    // A nested workload that forces real preemption.
    let jobs: JobSet = vec![
        Job::new(0, 26, 12, 6.0),  // outer
        Job::new(2, 12, 4, 3.0),   // mid, preempts outer
        Job::new(3, 7, 2, 2.0),    // inner, preempts mid
        Job::new(14, 20, 3, 2.0),  // second mid
        Job::new(21, 40, 6, 4.0),  // trailing
    ]
    .into_iter()
    .collect();
    let ids: Vec<JobId> = jobs.ids().collect();

    let inf = edf_schedule(&jobs, &ids, None);
    assert!(inf.is_feasible());
    println!("∞-preemptive EDF schedule (laminar nesting visible):\n");
    print!("{}", render_gantt(&jobs, &inf.schedule, RenderOptions::default()));
    let st = schedule_stats(&jobs, &inf.schedule);
    println!(
        "\nvalue {} / {}, total preemptions (context switches) = {}, histogram {:?}\n",
        st.value,
        jobs.total_value(),
        st.total_preemptions,
        st.preemption_histogram
    );

    for k in [1u32, 0] {
        let red = reduce_to_k_bounded(&jobs, &inf.schedule, k).unwrap();
        println!("after the Theorem 4.2 reduction at k = {k}:\n");
        print!("{}", render_gantt(&jobs, &red.schedule, RenderOptions::default()));
        let st = schedule_stats(&jobs, &red.schedule);
        println!(
            "\nvalue {} ({}% kept), total preemptions = {}\n",
            st.value,
            (st.value_fraction * 100.0).round(),
            st.total_preemptions
        );
    }

    // The Figure 2 instance: what "price n" looks like.
    let inst = Fig2Instance::new(5);
    let f2jobs = inst.build();
    println!("Figure 2 instance (n = 5), the 1-preemptive witness:\n");
    print!(
        "{}",
        render_gantt(&f2jobs, &inst.witness_schedule(), RenderOptions::default())
    );
    let f2ids: Vec<JobId> = f2jobs.ids().collect();
    let k0 = schedule_k0(&f2jobs, &f2ids);
    println!("\nnon-preemptive best (every job covers the center slot):\n");
    print!("{}", render_gantt(&f2jobs, &k0.schedule, RenderOptions::default()));
    println!(
        "\nOPT_∞ = {} vs OPT_0 = {} → price {}",
        f2jobs.len(),
        k0.value(&f2jobs),
        f2jobs.len() as f64 / k0.value(&f2jobs)
    );

    // Busy/idle profile of machine 0 under LSA_CS.
    let lax = lsa_cs(&jobs, &ids, 1);
    if let Some(h) = jobs.horizon() {
        println!(
            "\nLSA_CS (k = 1) machine profile over {:?}:\n{}",
            h,
            render_timeline(&lax.schedule, 0, h, 72)
        );
    }
}
