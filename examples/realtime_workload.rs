//! A realistic scenario: periodic-ish real-time tasks with context-switch
//! budgets, on one and several machines.
//!
//! ```text
//! cargo run --release --example realtime_workload
//! ```
//!
//! Motivation from the paper's introduction: preemption is not free (each
//! one costs a context switch), so a runtime wants to cap preemptions per
//! job. This example generates a seeded random workload of mixed laxity,
//! then compares the paper's algorithms against the naive baselines for
//! several per-job preemption budgets `k`, and shows the iterative
//! multi-machine extension.

use pobp::prelude::*;

fn main() {
    let workload = RandomWorkload {
        n: 120,
        horizon: 600,
        length_range: (2, 64),
        laxity: LaxityModel::Uniform { max: 12.0 },
        values: ValueModel::Uniform { max: 50 },
    };
    let jobs = workload.generate(2024);
    let ids: Vec<JobId> = jobs.ids().collect();
    println!(
        "workload: n = {}, P = {:.1}, total value = {}",
        jobs.len(),
        jobs.length_ratio().unwrap(),
        jobs.total_value()
    );

    // Reference: greedy ∞-preemptive acceptance (EDF-feasible prefix).
    let inf = greedy_unbounded(&jobs, &ids);
    let inf_value = inf.schedule.value(&jobs);
    println!("greedy ∞-preemptive reference: value {inf_value}\n");

    println!(" k | combined (Alg 3) | reduction (Thm 4.2) | LSA_CS | EDF-truncate");
    println!("---+------------------+---------------------+--------+-------------");
    for k in 0..5u32 {
        let reduction = reduce_to_k_bounded(&jobs, &inf.schedule, k).expect("feasible");
        reduction.schedule.verify(&jobs, Some(k)).unwrap();
        let lsa_out = lsa_cs(&jobs, &ids, k);
        lsa_out.schedule.verify(&jobs, Some(k)).unwrap();
        let trunc = edf_truncate(&jobs, &ids, k);
        trunc.verify(&jobs, Some(k)).unwrap();
        let combined = if k >= 1 {
            let out = k_preemption_combined(&jobs, &ids, &inf.schedule, k).expect("feasible");
            out.chosen.verify(&jobs, Some(k)).unwrap();
            out.chosen.value(&jobs)
        } else {
            let out = schedule_k0(&jobs, &ids);
            out.schedule.verify(&jobs, Some(0)).unwrap();
            out.value(&jobs)
        };
        println!(
            " {k} | {combined:16} | {:19} | {:6} | {:12}",
            reduction.schedule.value(&jobs),
            lsa_out.value(&jobs),
            trunc.value(&jobs),
        );
    }

    // Multi-machine: the §4.3.4 iterative extension with Algorithm 3.
    let k = 2;
    println!("\nmulti-machine (k = {k}, iterative Algorithm 3):");
    println!(" machines | value | fraction of single-machine ∞-reference");
    for m in [1usize, 2, 4, 8] {
        let sched = iterative_multi_machine(&jobs, &ids, m, |js, rem| {
            combined_from_scratch(js, rem, k).chosen
        });
        sched.verify(&jobs, Some(k)).unwrap();
        let v = sched.value(&jobs);
        println!(" {m:8} | {v:5} | {:.2}×", v / inf_value);
    }

    // A per-job report for the curious.
    let red = reduce_to_k_bounded(&jobs, &inf.schedule, k).unwrap();
    let scheduled = red.schedule.len();
    let preempted = red
        .schedule
        .scheduled_ids()
        .filter(|&j| red.schedule.preemptions(j) > 0)
        .count();
    println!(
        "\nat k = {k}: {scheduled} jobs scheduled, {preempted} actually preempted, \
         max segments = {}",
        red.schedule
            .scheduled_ids()
            .map(|j| red.schedule.preemptions(j) + 1)
            .max()
            .unwrap_or(0)
    );
}
