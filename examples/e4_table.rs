//! Regenerates the E4 table in EXPERIMENTS.md (run: cargo run --release --example e4_table).
use pobp::prelude::*;

fn main() {
    for k in 1..=4u32 {
        let mut prices = Vec::new();
        for seed in 0..20u64 {
            let jobs = RandomWorkload {
                n: 14,
                horizon: 40,
                length_range: (1, 12),
                laxity: LaxityModel::Uniform { max: 4.0 },
                values: ValueModel::Uniform { max: 20 },
            }
            .generate(seed);
            let ids: Vec<JobId> = jobs.ids().collect();
            let opt = opt_unbounded(&jobs, &ids);
            if opt.value == 0.0 {
                continue;
            }
            let red = reduce_to_k_bounded(&jobs, &opt.schedule, k).unwrap();
            prices.push(opt.value / red.schedule.value(&jobs));
        }
        let geo = (prices.iter().map(|p: &f64| p.ln()).sum::<f64>() / prices.len() as f64).exp();
        let worst = prices.iter().cloned().fold(f64::MIN, f64::max);
        let bound = (14f64).ln() / ((k + 1) as f64).ln();
        println!("k={k} geo={geo:.3} worst={worst:.3} bound={bound:.2}");
    }
}
