//! The paper's motivating trade-off, measured: context switches cost real
//! machine time, so *bounding* preemption can beat *free* preemption.
//!
//! ```text
//! cargo run --release --example context_switch_cost
//! ```
//!
//! Runs the overhead-aware online executor (`pobp-sim`) over a workload for
//! a sweep of switch costs δ, under free EDF, budgeted EDF (k ∈ {0, 1, 2}),
//! and non-preemptive dispatch, printing the achieved value and the paid
//! overhead — the crossover appears as δ grows. Then analyses the *offline*
//! robustness of the Theorem 4.2 reduction outputs.

use pobp::prelude::*;

fn main() {
    // Bimodal workload: a few long, valuable, fairly lax jobs that EDF will
    // preempt over and over, plus a steady stream of short tight jobs that
    // trigger those preemptions. This is where the preemption budget binds.
    let mut jobs = JobSet::new();
    for i in 0..8i64 {
        // Long jobs, staggered, generous windows.
        jobs.push(Job::new(30 * i, 30 * i + 200, 40, 40.0));
    }
    for i in 0..30i64 {
        // Short jobs every 12 ticks with moderate slack: each one preempts
        // whatever long job is running (earlier deadline), then hands back.
        jobs.push(Job::new(12 * i, 12 * i + 8, 3, 3.0));
    }
    let ids: Vec<JobId> = jobs.ids().collect();
    println!(
        "workload: n = {}, total value {}, P = {:.0}\n",
        jobs.len(),
        jobs.total_value(),
        jobs.length_ratio().unwrap()
    );

    println!("value achieved by online policies as switch cost δ grows:\n");
    println!("  δ | EDF (k=∞) | EdfBudget(2) | EdfBudget(1) | EdfBudget(0) | winner");
    println!("----+-----------+--------------+--------------+--------------+--------");
    for delta in [0i64, 1, 2, 4, 8, 16, 32] {
        let run = |policy: Policy| {
            let out = execute_online(&jobs, &ids, SimConfig { policy, switch_cost: delta });
            out.value(&jobs)
        };
        let vals = [
            ("EDF", run(Policy::Edf)),
            ("k=2", run(Policy::EdfBudget(2))),
            ("k=1", run(Policy::EdfBudget(1))),
            ("k=0", run(Policy::EdfBudget(0))),
        ];
        let winner = vals
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        println!(
            " {delta:2} | {:9} | {:12} | {:12} | {:12} | {}",
            vals[0].1, vals[1].1, vals[2].1, vals[3].1, winner.0
        );
    }

    println!("\noverhead accounting at δ = 4:\n");
    for (name, policy) in [
        ("EDF      ", Policy::Edf),
        ("budget k=1", Policy::EdfBudget(1)),
        ("non-preempt", Policy::NonPreemptive),
    ] {
        let out = execute_online(&jobs, &ids, SimConfig { policy, switch_cost: 4 });
        println!(
            "{name}: value {:5}, switches {:3}, overhead {:4} ticks, wasted work {:3} ticks, dropped {}",
            out.value(&jobs),
            out.trace.switches(),
            out.trace.overhead_time(),
            out.trace.work_time()
                - out
                    .schedule
                    .scheduled_ids()
                    .map(|j| jobs.job(j).length)
                    .sum::<i64>(),
            out.dropped.len(),
        );
    }

    println!("\noffline robustness of the Theorem 4.2 reduction outputs:\n");
    println!(" k | value | switches | max robust δ | efficiency @ δ=4");
    println!("---+-------+----------+--------------+-----------------");
    let inf = greedy_unbounded(&jobs, &ids);
    for k in 0..4u32 {
        let red = reduce_to_k_bounded(&jobs, &inf.schedule, k).unwrap();
        let robust = max_robust_delta(&red.schedule)
            .map(|d| d.to_string())
            .unwrap_or_else(|| "∞".into());
        println!(
            " {k} | {:5} | {:8} | {robust:>12} | {:.3}",
            red.schedule.value(&jobs),
            switch_count(&red.schedule),
            efficiency(&jobs, &red.schedule, 4),
        );
    }
    println!("\n(fewer allowed preemptions → fewer switches → higher efficiency at a");
    println!("given δ — the price of bounded preemption buys overhead robustness)");
}
