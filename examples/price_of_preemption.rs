//! Reproduce the paper's tightness results on the adversarial instances.
//!
//! ```text
//! cargo run --release --example price_of_preemption
//! ```
//!
//! Builds the Figure 4 (Appendix B) nested K-ary job instance for several
//! `(k, L)` pairs and measures the price of bounded preemption against the
//! analytic `Ω(log_{k+1} n)` / `Ω(log_{k+1} P)` lower bounds, and the
//! Figure 2 instance for the `k = 0` case.

use pobp::prelude::*;

fn main() {
    println!("=== Figure 4 / Theorems 4.3 & 4.13: PoBP_k = Ω(log_(k+1) n) ===\n");
    println!(" k |  L |       n |        P | OPT_inf | OPT_k<=  | price>= | (L+1)/2");
    println!("---+----+---------+----------+---------+----------+---------+--------");
    for k in 1..=3u32 {
        for depth in 1..=4u32 {
            let inst = Fig4Instance::for_k(k, depth);
            let built = inst.build();
            let ids: Vec<JobId> = built.jobs.ids().collect();
            // OPT_∞: the whole set is EDF-feasible (verified).
            assert!(edf_feasible(&built.jobs, &ids), "construction must be feasible");
            let opt_inf = inst.opt_unbounded_value();
            // OPT_k: analytic Lemma B.2 bound, cross-checked by the reduction.
            let opt_k = inst.opt_k_upper_bound(k);
            let price = opt_inf / opt_k;
            println!(
                " {k} | {depth:2} | {:7} | {:8.1e} | {opt_inf:7} | {opt_k:8.2} | {price:7.3} | {:6.1}",
                inst.job_count(),
                inst.length_ratio(),
                (depth as f64 + 1.0) / 2.0,
            );
        }
        println!();
    }

    println!("=== Figure 2 / §5: PoBP_0 = Θ(min{{n, log P}}) ===\n");
    println!(" n |        P | OPT_inf | OPT_0 | price | log2(P)+1");
    println!("---+----------+---------+-------+-------+----------");
    for n in [2u32, 4, 8, 12, 16] {
        let inst = Fig2Instance::new(n);
        let jobs = inst.build();
        let ids: Vec<JobId> = jobs.ids().collect();
        assert!(edf_feasible(&jobs, &ids));
        // The witness uses one preemption per job; OPT_0 is exactly 1.
        inst.witness_schedule().verify(&jobs, Some(1)).unwrap();
        let opt0 = if n <= 16 {
            opt_nonpreemptive(&jobs, &ids).value
        } else {
            1.0
        };
        println!(
            "{n:2} | {:8.1e} | {:7} | {opt0:5} | {:5.1} | {:8.1}",
            inst.length_ratio(),
            n,
            n as f64 / opt0,
            inst.length_ratio().log2() + 1.0,
        );
    }

    println!("\n=== Appendix A: k-BAS loss factor is Ω(log_(k+1) n) ===\n");
    println!(" k |  L |       n | total | TM value | loss  | (L+1)·(K-k)/K");
    println!("---+----+---------+-------+----------+-------+---------------");
    for k in 1..=3u32 {
        for depth in [2u32, 4, 6] {
            let lb = LowerBoundTree::for_k(k, depth);
            let forest = lb.build();
            let res = tm(&forest, k);
            let loss = forest.total_value() / res.value;
            let expect = (depth as f64 + 1.0) * (k as f64) / (2.0 * k as f64);
            println!(
                " {k} | {depth:2} | {:7} | {:5} | {:8.2} | {loss:5.2} | {expect:6.2}",
                lb.node_count(),
                lb.total_value(),
                res.value,
            );
        }
        println!();
    }
    println!("(the measured loss tracks (L+1)/2 — linear in L = log_K n, as proven)");
}
